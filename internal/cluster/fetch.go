package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"hputune/internal/server"
	"hputune/internal/store"
)

// HTTPFetch implements Fetch against a node's /v1/replication surface.
type HTTPFetch struct {
	// Base is the node's base URL (no trailing slash).
	Base string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
}

func (h *HTTPFetch) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// maxFetchBody bounds one replication reply: the served tail is at most
// SnapshotEvery records of at most maxRecordBytes each in theory, but
// any sane reply is far below this; the cap only stops a broken peer
// from ballooning the follower.
const maxFetchBody = 256 << 20

func (h *HTTPFetch) get(ctx context.Context, url string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBody))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return raw, resp.StatusCode, nil
}

// State fetches the node's full durable snapshot.
func (h *HTTPFetch) State(ctx context.Context) (*store.State, error) {
	raw, status, err := h.get(ctx, h.Base+"/v1/replication/state")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: GET /v1/replication/state: status %d: %s", status, clip(raw))
	}
	var doc server.ReplicationStateResponse
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("cluster: decode replication state: %w", err)
	}
	if doc.State == nil {
		return nil, fmt.Errorf("cluster: replication state reply has no state")
	}
	return doc.State, nil
}

// WAL fetches the framed records after `from`; a 410 (code "compacted")
// maps back to store.ErrCompacted so the follower re-seeds.
func (h *HTTPFetch) WAL(ctx context.Context, from uint64) ([]byte, error) {
	raw, status, err := h.get(ctx, h.Base+"/v1/replication/wal?from="+strconv.FormatUint(from, 10))
	if err != nil {
		return nil, err
	}
	if status == http.StatusGone {
		return nil, store.ErrCompacted
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: GET /v1/replication/wal: status %d: %s", status, clip(raw))
	}
	return raw, nil
}

// clip bounds an error-reply body for message embedding.
func clip(raw []byte) string {
	const max = 200
	if len(raw) > max {
		raw = raw[:max]
	}
	return string(raw)
}
