package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"hputune/internal/store"
)

func shipRecords(t *testing.T, n int, from uint64) []store.Record {
	t.Helper()
	recs := make([]store.Record, n)
	for i := range recs {
		recs[i] = store.Record{
			Seq:  from + 1 + uint64(i),
			Type: store.TypeRound,
			Data: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)),
		}
	}
	return recs
}

func TestShipRoundTrip(t *testing.T) {
	recs := shipRecords(t, 5, 7)
	wire, err := EncodeShip(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, good, derr := DecodeShip(wire, 7)
	if derr != nil {
		t.Fatalf("decode: %v", derr)
	}
	if good != int64(len(wire)) {
		t.Fatalf("good offset %d, want %d", good, len(wire))
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Seq != recs[i].Seq || got[i].Type != recs[i].Type || !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestShipRejectsGapAndWrongStart(t *testing.T) {
	recs := shipRecords(t, 3, 10)
	wire, err := EncodeShip(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong cursor: the run starts at 11, the follower is at 11 → wants 12.
	got, good, derr := DecodeShip(wire, 11)
	var se *ShipError
	if !errors.As(derr, &se) || se.Want != 12 || se.Got != 11 {
		t.Fatalf("wrong-start decode: %v", derr)
	}
	if len(got) != 0 || good != 0 {
		t.Fatalf("wrong start kept %d records to offset %d", len(got), good)
	}
	// Gap: drop the middle record.
	gapped, err := EncodeShip([]store.Record{recs[0], recs[2]})
	if err != nil {
		t.Fatal(err)
	}
	got, good, derr = DecodeShip(gapped, 10)
	if !errors.As(derr, &se) || se.Want != 12 || se.Got != 13 {
		t.Fatalf("gap decode: %v", derr)
	}
	if len(got) != 1 || got[0].Seq != 11 {
		t.Fatalf("gap prefix %+v", got)
	}
	// The good offset must bound a clean, appendable prefix.
	again, againGood, derr := DecodeShip(gapped[:good], 10)
	if derr != nil || againGood != good || len(again) != 1 {
		t.Fatalf("prefix re-decode: %v (%d records to %d)", derr, len(again), againGood)
	}
}

func TestShipTornTailKeepsPrefix(t *testing.T) {
	wire, err := EncodeShip(shipRecords(t, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	torn := wire[:len(wire)-3]
	recs, good, derr := DecodeShip(torn, 0)
	var te *store.TailError
	if !errors.As(derr, &te) {
		t.Fatalf("torn decode: %v", derr)
	}
	if len(recs) != 2 || recs[1].Seq != 2 {
		t.Fatalf("torn prefix %+v", recs)
	}
	if good > int64(len(torn)) || good <= 0 {
		t.Fatalf("good offset %d of %d", good, len(torn))
	}
	if clean, _, derr := DecodeShip(torn[:good], 0); derr != nil || len(clean) != 2 {
		t.Fatalf("prefix re-decode: %v (%d records)", derr, len(clean))
	}
}

// FuzzShipDecode holds DecodeShip to its contract on arbitrary bytes:
// classified errors only, a good offset that always bounds a clean and
// idempotently re-decodable prefix, and an encode fixed point.
func FuzzShipDecode(f *testing.F) {
	valid, _ := EncodeShip([]store.Record{
		{Seq: 1, Type: store.TypeIngest, Data: json.RawMessage(`{"a":1}`)},
		{Seq: 2, Type: store.TypeFit, Data: json.RawMessage(`{"b":"<&>"}`)},
	})
	f.Add(valid, uint64(0))
	f.Add(valid[:len(valid)-4], uint64(0)) // torn tail
	f.Add(valid, uint64(5))                // wrong cursor
	corrupt := append([]byte(nil), valid...)
	corrupt[10] ^= 0xff
	f.Add(corrupt, uint64(0))
	gapped, _ := EncodeShip([]store.Record{
		{Seq: 1, Type: store.TypeRound, Data: json.RawMessage(`1`)},
		{Seq: 3, Type: store.TypeRound, Data: json.RawMessage(`2`)},
	})
	f.Add(gapped, uint64(0))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{1, 2, 3}, uint64(9))

	f.Fuzz(func(t *testing.T, data []byte, after uint64) {
		recs, good, err := DecodeShip(data, after)
		// 1. Errors are classified: nil, torn tail, corruption, or a
		// contiguity break — never a panic, never an unclassified error.
		var te *store.TailError
		var ce *store.CorruptError
		var se *ShipError
		if err != nil && !errors.As(err, &te) && !errors.As(err, &ce) && !errors.As(err, &se) {
			t.Fatalf("unclassified error %T: %v", err, err)
		}
		// 2. The good offset bounds the input.
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0, %d]", good, len(data))
		}
		// 3. The records are gapless from after+1.
		for i, rec := range recs {
			if rec.Seq != after+1+uint64(i) {
				t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, after+1+uint64(i))
			}
		}
		// 4. Truncation-repair idempotence: the good prefix decodes
		// cleanly and reproduces exactly the same records — what the
		// follower relies on when it appends data[:good] verbatim.
		recs2, good2, err2 := DecodeShip(data[:good], after)
		if err2 != nil {
			t.Fatalf("prefix re-decode failed: %v", err2)
		}
		if good2 != good || len(recs2) != len(recs) {
			t.Fatalf("prefix re-decode: %d records to %d, want %d to %d", len(recs2), good2, len(recs), good)
		}
		for i := range recs {
			if recs2[i].Seq != recs[i].Seq || recs2[i].Type != recs[i].Type || !bytes.Equal(recs2[i].Data, recs[i].Data) {
				t.Fatalf("prefix record %d differs: %+v != %+v", i, recs2[i], recs[i])
			}
		}
		// 5. Decoded records re-encode (the JSON is valid), and the
		// encoding is a fixed point: encode(decode(encode(...))) is
		// byte-stable even where it legally differs from the input
		// (JSON escaping normalizes after one pass).
		e1, eerr := EncodeShip(recs)
		if eerr != nil {
			t.Fatalf("re-encode: %v", eerr)
		}
		recs3, g3, err3 := DecodeShip(e1, after)
		if err3 != nil || g3 != int64(len(e1)) || len(recs3) != len(recs) {
			t.Fatalf("re-encoded run decode: %v (%d records to %d of %d)", err3, len(recs3), g3, len(e1))
		}
		e2, eerr := EncodeShip(recs3)
		if eerr != nil || !bytes.Equal(e2, e1) {
			t.Fatalf("encode not a fixed point (err %v)", eerr)
		}
	})
}
