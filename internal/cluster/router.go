package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/server"
	"hputune/internal/spec"
	"hputune/internal/traffic"
)

// Router fronts a Cluster with the same /v1 envelope API each node
// serves, so a client cannot tell one htuned from N:
//
//   - POST /v1/campaigns scatters the spec: each campaign in the
//     document goes to the ring owner of its sub-spec, fleet presets
//     are split per index, and the returned ids are prefixed
//     "<node>-" so every later GET/DELETE routes back to the owner.
//   - POST /v1/ingest partitions by client identity on the ring, so
//     one client's trace stream always lands on one node's WAL.
//   - POST /v1/solve, /v1/solve-heterogeneous and /v1/simulate are
//     stateless and round-robin across the healthy pool.
//   - GET /v1/stats and /v1/metrics fan out and return a cluster
//     document: {"router": ..., "nodes": {name: node-reply}}.
//
// Error replies reuse the nodes' envelope codes verbatim; the router's
// own failures (unknown node, unreachable node) carry the same shape.
type Router struct {
	cl     *Cluster
	client *http.Client
	mux    *http.ServeMux
	hist   *traffic.HistogramSet

	rr        atomic.Uint64
	proxied   atomic.Uint64
	scattered atomic.Uint64
	failovers atomic.Uint64
}

// maxRouterBody mirrors the nodes' request byte cap.
const maxRouterBody = 32 << 20

// NewRouter builds a router over cl; client nil means a 30s-timeout
// default.
func NewRouter(cl *Cluster, client *http.Client) *Router {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	rt := &Router{cl: cl, client: client, mux: http.NewServeMux()}
	var patterns []string
	handle := func(pattern string, h http.HandlerFunc) {
		rt.mux.HandleFunc(pattern, h)
		patterns = append(patterns, pattern)
	}
	handle("POST /v1/solve", rt.roundRobin)
	handle("POST /v1/solve-heterogeneous", rt.roundRobin)
	handle("POST /v1/simulate", rt.roundRobin)
	handle("POST /v1/ingest", rt.handleIngest)
	handle("POST /v1/campaigns", rt.handleCampaignStart)
	handle("GET /v1/campaigns", rt.handleCampaignList)
	handle("GET /v1/campaigns/{id}", rt.handleCampaignByID)
	handle("DELETE /v1/campaigns/{id}", rt.handleCampaignByID)
	handle("GET /v1/stats", rt.handleFanout)
	handle("GET /v1/metrics", rt.handleFanout)
	handle("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	rt.hist = traffic.NewHistogramSet(patterns...)
	return rt
}

// Handler wraps the mux with the byte cap, envelope interception for
// the mux's own plain-text 404/405s, and the latency histograms.
func (rt *Router) Handler() http.Handler {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ew := &envelopeWriter{rw: w}
		_, pattern := rt.mux.Handler(r)
		rt.mux.ServeHTTP(ew, r)
		ew.finish()
		rt.hist.Observe(pattern, time.Since(start))
	})
	return http.MaxBytesHandler(inner, maxRouterBody)
}

// forward proxies one request body to a node and copies the reply —
// status, content type and body — back verbatim, so envelope replies
// survive the hop untouched. An unreachable node becomes a 503 with
// the overloaded code and a retry hint.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, node, path string, body []byte) {
	status, _, raw, err := rt.call(r, node, path, body)
	if err != nil {
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second,
			"node %q unreachable: %v", node, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
}

// call issues one node request and returns status, headers and body.
func (rt *Router) call(r *http.Request, node, path string, body []byte) (int, http.Header, []byte, error) {
	base, ok := rt.cl.NodeURL(node)
	if !ok {
		return 0, nil, nil, fmt.Errorf("unknown node")
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	// The client identity must survive the hop: the nodes rate-limit
	// and partition on it.
	for _, h := range []string{"X-Client-ID", "X-Request-ID", "Content-Type"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRouterBody+1))
	if err != nil {
		return 0, nil, nil, err
	}
	rt.proxied.Add(1)
	return resp.StatusCode, resp.Header, raw, nil
}

// readBody drains the (capped) request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(*http.MaxBytesError); ok {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "read request body: %v", err)
		return nil, false
	}
	return raw, true
}

// roundRobin sends stateless bulk work to the next healthy node.
func (rt *Router) roundRobin(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	pool := rt.cl.Healthy()
	if len(pool) == 0 {
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second, "no healthy nodes")
		return
	}
	node := pool[rt.rr.Add(1)%uint64(len(pool))]
	rt.forward(w, r, node, r.URL.Path, body)
}

// handleIngest partitions trace batches by client identity: the same
// client's stream always reaches the same node's estimator and WAL.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	key := r.Header.Get("X-Client-ID")
	if key == "" {
		key = r.RemoteAddr
	}
	node := rt.cl.Place("ingest:" + key)
	if node == "" {
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second, "empty cluster")
		return
	}
	rt.forward(w, r, node, "/v1/ingest", body)
}

// startDoc is the router's minimal view of a campaign-start document —
// just enough structure to scatter it. Field validation stays on the
// nodes; DisallowUnknownFields here only catches documents the scatter
// would misroute.
type startDoc struct {
	Campaign  json.RawMessage   `json:"campaign"`
	Campaigns []json.RawMessage `json:"campaigns"`
	Fleet     *fleetDoc         `json:"fleet"`
}

type fleetDoc struct {
	Preset string `json:"preset"`
	Seed   uint64 `json:"seed"`
	Index  *int   `json:"index"`
}

// subStart is one scattered unit: a single-campaign sub-document and
// its placement key.
type subStart struct {
	doc []byte
	key string
}

// scatter splits a start document into per-campaign sub-documents.
func scatter(raw []byte) ([]subStart, error) {
	var doc startDoc
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	kinds := 0
	for _, present := range []bool{doc.Campaign != nil, doc.Campaigns != nil, doc.Fleet != nil} {
		if present {
			kinds++
		}
	}
	if kinds != 1 {
		return nil, fmt.Errorf(`exactly one of "campaign", "campaigns" or "fleet" must be set`)
	}
	switch {
	case doc.Campaign != nil:
		return []subStart{{doc: raw, key: "campaign:" + string(doc.Campaign)}}, nil
	case doc.Campaigns != nil:
		subs := make([]subStart, len(doc.Campaigns))
		for i, c := range doc.Campaigns {
			sub, err := json.Marshal(map[string]json.RawMessage{"campaign": c})
			if err != nil {
				return nil, err
			}
			subs[i] = subStart{doc: sub, key: fmt.Sprintf("campaigns:%d:%s", i, c)}
		}
		return subs, nil
	default:
		if doc.Fleet.Index != nil {
			return []subStart{{doc: raw, key: fmt.Sprintf("fleet:%s:%d:%d", doc.Fleet.Preset, doc.Fleet.Seed, *doc.Fleet.Index)}}, nil
		}
		// Expand the preset locally (the expansion is deterministic) only
		// to learn its size, then ship one indexed sub-spec per campaign;
		// each node re-expands its own index identically.
		cfgs, err := spec.ParseCampaigns(raw, spec.BuildOpts{})
		if err != nil {
			return nil, err
		}
		subs := make([]subStart, len(cfgs))
		for i := range cfgs {
			sub, err := json.Marshal(map[string]any{"fleet": map[string]any{
				"preset": doc.Fleet.Preset, "seed": doc.Fleet.Seed, "index": i,
			}})
			if err != nil {
				return nil, err
			}
			subs[i] = subStart{doc: sub, key: fmt.Sprintf("fleet:%s:%d:%d", doc.Fleet.Preset, doc.Fleet.Seed, i)}
		}
		return subs, nil
	}
}

// handleCampaignStart scatters the document, starts each sub-campaign
// on its ring owner, and replies with the cluster-wide prefixed ids.
// On a partial failure the already-started campaigns are canceled and
// the failing node's envelope is propagated verbatim.
func (rt *Router) handleCampaignStart(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	subs, err := scatter(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "scatter campaign spec: %v", err)
		return
	}
	if rt.cl.Place("probe") == "" {
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second, "empty cluster")
		return
	}
	var started []string // prefixed ids, in sub order
	rollback := func() {
		for _, id := range started {
			node, rest, ok := splitID(id)
			if !ok {
				continue
			}
			req, err := http.NewRequest(http.MethodDelete, "", nil)
			if err != nil {
				continue
			}
			_, _, _, _ = rt.call(req, node, "/v1/campaigns/"+rest, nil)
		}
	}
	for _, sub := range subs {
		node := rt.cl.Place(sub.key)
		status, _, raw, err := rt.call(r, node, "/v1/campaigns", sub.doc)
		if err != nil {
			rollback()
			writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second,
				"node %q unreachable: %v", node, err)
			return
		}
		if status != http.StatusAccepted {
			rollback()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_, _ = w.Write(raw)
			return
		}
		var reply server.CampaignStartResponse
		if err := json.Unmarshal(raw, &reply); err != nil || len(reply.IDs) != 1 {
			rollback()
			writeError(w, http.StatusInternalServerError,
				"node %q start reply %q did not carry exactly one id", node, raw)
			return
		}
		started = append(started, node+"-"+reply.IDs[0])
	}
	rt.scattered.Add(uint64(len(started)))
	writeJSON(w, http.StatusAccepted, server.CampaignStartResponse{IDs: started})
}

// splitID cuts a cluster-wide campaign id "<node>-<id>" at the first
// '-' (node names cannot contain one).
func splitID(id string) (node, rest string, ok bool) {
	return strings.Cut(id, "-")
}

// handleCampaignByID routes GET and DELETE for one campaign back to
// its owner and rewrites the reply id to the cluster-wide form.
func (rt *Router) handleCampaignByID(w http.ResponseWriter, r *http.Request) {
	full := r.PathValue("id")
	node, rest, ok := splitID(full)
	if !ok {
		writeError(w, http.StatusNotFound, "campaign id %q has no node prefix", full)
		return
	}
	if _, known := rt.cl.NodeURL(node); !known {
		writeError(w, http.StatusNotFound, "unknown node %q in campaign id %q", node, full)
		return
	}
	status, _, raw, err := rt.call(r, node, "/v1/campaigns/"+rest, nil)
	if err != nil {
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second,
			"node %q unreachable: %v", node, err)
		return
	}
	if status == http.StatusOK {
		var reply server.CampaignGetResponse
		if err := json.Unmarshal(raw, &reply); err == nil {
			reply.ID = full
			writeJSON(w, status, reply)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
}

// handleCampaignList fans out, prefixes every summary id, and merges.
func (rt *Router) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	var all []campaign.Summary
	for _, n := range rt.cl.Nodes() {
		status, _, raw, err := rt.call(r, n.Name, "/v1/campaigns", nil)
		if err != nil || status != http.StatusOK {
			continue // a dead node's campaigns reappear after failover
		}
		var reply server.CampaignListResponse
		if err := json.Unmarshal(raw, &reply); err != nil {
			continue
		}
		for _, sum := range reply.Campaigns {
			sum.ID = n.Name + "-" + sum.ID
			all = append(all, sum)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	writeJSON(w, http.StatusOK, server.CampaignListResponse{Campaigns: all})
}

// RouterStats is the router's own counter block in the fan-out docs.
type RouterStats struct {
	// Proxied counts node requests issued.
	Proxied uint64 `json:"proxied"`
	// Scattered counts campaigns started through the scatter path.
	Scattered uint64 `json:"scattered"`
	// Failovers counts follower promotions (maintained by cmd/htrouter).
	Failovers uint64 `json:"failovers"`
	// Nodes is the membership view.
	Nodes []NodeStatus `json:"nodes"`
	// Endpoints are the router's own per-route latency histograms.
	Endpoints map[string]traffic.HistogramSnapshot `json:"endpoints"`
}

// Stats snapshots the router.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Proxied:   rt.proxied.Load(),
		Scattered: rt.scattered.Load(),
		Failovers: rt.failovers.Load(),
		Nodes:     rt.cl.Nodes(),
		Endpoints: rt.hist.Snapshot(),
	}
}

// AddFailover bumps the failover counter (cmd/htrouter calls it at
// each promotion).
func (rt *Router) AddFailover() { rt.failovers.Add(1) }

// handleFanout serves GET /v1/stats and /v1/metrics as a cluster
// document: the router's own counters plus each node's verbatim reply.
func (rt *Router) handleFanout(w http.ResponseWriter, r *http.Request) {
	nodes := make(map[string]json.RawMessage)
	for _, n := range rt.cl.Nodes() {
		status, _, raw, err := rt.call(r, n.Name, r.URL.Path, nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		nodes[n.Name] = raw
	}
	writeJSON(w, http.StatusOK, map[string]any{"router": rt.Stats(), "nodes": nodes})
}
