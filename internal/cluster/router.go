package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/server"
	"hputune/internal/spec"
	"hputune/internal/store"
	"hputune/internal/traffic"
)

// Router fronts a Cluster with the same /v1 envelope API each node
// serves, so a client cannot tell one htuned from N:
//
//   - POST /v1/campaigns scatters the spec: each campaign in the
//     document goes to the ring owner of its sub-spec, fleet presets
//     are split per index, and the returned ids are prefixed
//     "<node>-" so every later GET/DELETE routes back to the owner.
//   - POST /v1/ingest partitions by client identity on the ring, so
//     one client's trace stream always lands on one node's WAL.
//   - POST /v1/solve, /v1/solve-heterogeneous and /v1/simulate are
//     stateless and round-robin across the healthy pool.
//   - GET /v1/stats and /v1/metrics fan out and return a cluster
//     document: {"router": ..., "nodes": {name: node-reply}}.
//
// Error replies reuse the nodes' envelope codes verbatim; the router's
// own failures (unknown node, unreachable node) carry the same shape.
type Router struct {
	cl     *Cluster
	client *http.Client
	mux    *http.ServeMux
	hist   *traffic.HistogramSet

	// replica, when set (SetReplicaSource), materializes a node's
	// follower replica state for stale-allowed reads while the node is
	// down but not yet promoted.
	replica func(node string) (*store.State, error)

	rr         atomic.Uint64
	proxied    atomic.Uint64
	scattered  atomic.Uint64
	failovers  atomic.Uint64
	staleReads atomic.Uint64
}

// maxRouterBody mirrors the nodes' request byte cap.
const maxRouterBody = 32 << 20

// NewRouter builds a router over cl; client nil means a 30s-timeout
// default.
func NewRouter(cl *Cluster, client *http.Client) *Router {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	rt := &Router{cl: cl, client: client, mux: http.NewServeMux()}
	var patterns []string
	handle := func(pattern string, h http.HandlerFunc) {
		rt.mux.HandleFunc(pattern, h)
		patterns = append(patterns, pattern)
	}
	handle("POST /v1/solve", rt.roundRobin)
	handle("POST /v1/solve-heterogeneous", rt.roundRobin)
	handle("POST /v1/simulate", rt.roundRobin)
	handle("POST /v1/ingest", rt.handleIngest)
	handle("POST /v1/campaigns", rt.handleCampaignStart)
	handle("GET /v1/campaigns", rt.handleCampaignList)
	handle("GET /v1/campaigns/{id}", rt.handleCampaignByID)
	handle("DELETE /v1/campaigns/{id}", rt.handleCampaignByID)
	handle("GET /v1/stats", rt.handleFanout)
	handle("GET /v1/metrics", rt.handleFanout)
	handle("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	rt.hist = traffic.NewHistogramSet(patterns...)
	return rt
}

// Handler wraps the mux with the byte cap, envelope interception for
// the mux's own plain-text 404/405s, and the latency histograms.
func (rt *Router) Handler() http.Handler {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ew := &envelopeWriter{rw: w}
		_, pattern := rt.mux.Handler(r)
		rt.mux.ServeHTTP(ew, r)
		ew.finish()
		rt.hist.Observe(pattern, time.Since(start))
	})
	return http.MaxBytesHandler(inner, maxRouterBody)
}

// forward proxies one request body to a node and copies the reply —
// status, content type and body — back verbatim, so envelope replies
// survive the hop untouched. An unreachable node becomes a 503 with
// the overloaded code and a retry hint.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, node, path string, body []byte) {
	status, _, raw, err := rt.call(r, node, path, body)
	if err != nil {
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second,
			"node %q unreachable: %v", node, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
}

// call issues one node request and returns status, headers and body.
func (rt *Router) call(r *http.Request, node, path string, body []byte) (int, http.Header, []byte, error) {
	base, ok := rt.cl.NodeURL(node)
	if !ok {
		return 0, nil, nil, fmt.Errorf("unknown node")
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	// The client identity must survive the hop: the nodes rate-limit
	// and partition on it. Header-less clients get their resolved
	// identity (remote host, port stripped) stamped on — otherwise every
	// such client would share one node-side rate bucket keyed by the
	// router's own address, and one noisy client could exhaust the
	// cluster's whole budget for everyone behind the proxy. A
	// caller-supplied value is forwarded verbatim.
	for _, h := range []string{server.DefaultClientHeader, "X-Request-ID", "Content-Type"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	if req.Header.Get(server.DefaultClientHeader) == "" {
		if key := server.ResolveClientKey(r, ""); key != "" {
			req.Header.Set(server.DefaultClientHeader, key)
		}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRouterBody+1))
	if err != nil {
		return 0, nil, nil, err
	}
	rt.proxied.Add(1)
	return resp.StatusCode, resp.Header, raw, nil
}

// readBody drains the (capped) request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(*http.MaxBytesError); ok {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "read request body: %v", err)
		return nil, false
	}
	return raw, true
}

// roundRobin sends stateless bulk work to the next healthy node.
func (rt *Router) roundRobin(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	pool := rt.cl.Healthy()
	if len(pool) == 0 {
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second, "no healthy nodes")
		return
	}
	node := pool[rt.rr.Add(1)%uint64(len(pool))]
	rt.forward(w, r, node, r.URL.Path, body)
}

// handleIngest partitions trace batches by client identity: the same
// client's stream always reaches the same node's estimator and WAL.
// The identity is the shared server rule — header when present, else
// the remote host with the port stripped. Using the raw remote address
// here would hand a header-less client a fresh ephemeral port (hence a
// fresh placement) per TCP connection, splitting its stream across
// nodes.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	key := server.ResolveClientKey(r, "")
	node := rt.cl.Place("ingest:" + key)
	if node == "" {
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second, "empty cluster")
		return
	}
	rt.forward(w, r, node, "/v1/ingest", body)
}

// startDoc is the router's minimal view of a campaign-start document —
// just enough structure to scatter it. Field validation stays on the
// nodes; DisallowUnknownFields here only catches documents the scatter
// would misroute.
type startDoc struct {
	Campaign  json.RawMessage   `json:"campaign"`
	Campaigns []json.RawMessage `json:"campaigns"`
	Fleet     *fleetDoc         `json:"fleet"`
}

type fleetDoc struct {
	Preset string `json:"preset"`
	Seed   uint64 `json:"seed"`
	Index  *int   `json:"index"`
}

// subStart is one scattered unit: a single-campaign sub-document and
// its placement key.
type subStart struct {
	doc []byte
	key string
}

// scatter splits a start document into per-campaign sub-documents.
func scatter(raw []byte) ([]subStart, error) {
	var doc startDoc
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	kinds := 0
	for _, present := range []bool{doc.Campaign != nil, doc.Campaigns != nil, doc.Fleet != nil} {
		if present {
			kinds++
		}
	}
	if kinds != 1 {
		return nil, fmt.Errorf(`exactly one of "campaign", "campaigns" or "fleet" must be set`)
	}
	switch {
	case doc.Campaign != nil:
		return []subStart{{doc: raw, key: "campaign:" + string(doc.Campaign)}}, nil
	case doc.Campaigns != nil:
		subs := make([]subStart, len(doc.Campaigns))
		for i, c := range doc.Campaigns {
			sub, err := json.Marshal(map[string]json.RawMessage{"campaign": c})
			if err != nil {
				return nil, err
			}
			subs[i] = subStart{doc: sub, key: fmt.Sprintf("campaigns:%d:%s", i, c)}
		}
		return subs, nil
	default:
		if doc.Fleet.Index != nil {
			return []subStart{{doc: raw, key: fmt.Sprintf("fleet:%s:%d:%d", doc.Fleet.Preset, doc.Fleet.Seed, *doc.Fleet.Index)}}, nil
		}
		// Expand the preset locally (the expansion is deterministic) only
		// to learn its size, then ship one indexed sub-spec per campaign;
		// each node re-expands its own index identically.
		cfgs, err := spec.ParseCampaigns(raw, spec.BuildOpts{})
		if err != nil {
			return nil, err
		}
		subs := make([]subStart, len(cfgs))
		for i := range cfgs {
			sub, err := json.Marshal(map[string]any{"fleet": map[string]any{
				"preset": doc.Fleet.Preset, "seed": doc.Fleet.Seed, "index": i,
			}})
			if err != nil {
				return nil, err
			}
			subs[i] = subStart{doc: sub, key: fmt.Sprintf("fleet:%s:%d:%d", doc.Fleet.Preset, doc.Fleet.Seed, i)}
		}
		return subs, nil
	}
}

// handleCampaignStart scatters the document, starts each sub-campaign
// on its ring owner, and replies with the cluster-wide prefixed ids.
// On a partial failure the already-started campaigns are canceled and
// the failing node's envelope is propagated verbatim.
func (rt *Router) handleCampaignStart(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	subs, err := scatter(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "scatter campaign spec: %v", err)
		return
	}
	if rt.cl.Place("probe") == "" {
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second, "empty cluster")
		return
	}
	var started []string // prefixed ids, in sub order
	rollback := func() {
		for _, id := range started {
			node, rest, ok := splitID(id)
			if !ok {
				continue
			}
			req, err := http.NewRequest(http.MethodDelete, "", nil)
			if err != nil {
				continue
			}
			_, _, _, _ = rt.call(req, node, "/v1/campaigns/"+rest, nil)
		}
	}
	for _, sub := range subs {
		node := rt.cl.Place(sub.key)
		status, _, raw, err := rt.call(r, node, "/v1/campaigns", sub.doc)
		if err != nil {
			rollback()
			writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second,
				"node %q unreachable: %v", node, err)
			return
		}
		if status != http.StatusAccepted {
			rollback()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_, _ = w.Write(raw)
			return
		}
		var reply server.CampaignStartResponse
		if err := json.Unmarshal(raw, &reply); err != nil || len(reply.IDs) != 1 {
			rollback()
			writeError(w, http.StatusInternalServerError,
				"node %q start reply %q did not carry exactly one id", node, raw)
			return
		}
		started = append(started, node+"-"+reply.IDs[0])
	}
	rt.scattered.Add(uint64(len(started)))
	writeJSON(w, http.StatusAccepted, server.CampaignStartResponse{IDs: started})
}

// splitID cuts a cluster-wide campaign id "<node>-<id>" at the first
// '-' (node names cannot contain one).
func splitID(id string) (node, rest string, ok bool) {
	return strings.Cut(id, "-")
}

// SetReplicaSource installs the stale-read hook: a function that
// materializes the named node's follower replica state (and fails when
// there is no usable replica — never synced, already promoted, or
// unreadable). With it set, GET reads for a node that cannot be reached
// are served from its replica, clearly labeled stale; writes keep
// failing with 503 until the watchdog promotes the replica.
func (rt *Router) SetReplicaSource(src func(node string) (*store.State, error)) {
	rt.replica = src
}

// replicaState resolves a node's replica state for a stale read, or nil
// when stale serving is not possible (no source configured, the node
// was already promoted, or the replica is unreadable).
func (rt *Router) replicaState(node string) *store.State {
	if rt.replica == nil {
		return nil
	}
	st, err := rt.replica(node)
	if err != nil || st == nil {
		return nil
	}
	return st
}

// staleHeader labels every reply served from a follower replica rather
// than the owning node.
const staleHeader = "X-HT-Stale"

// replicaResult rebuilds a campaign's Result view from its durable
// replica state — the same mapping a promoted server's Restore applies:
// the checkpoint carries every scalar, the retained rounds ride beside
// it, and convergence is a function of the status.
func replicaResult(cs *store.CampaignState) campaign.Result {
	chk := cs.Checkpoint
	return campaign.Result{
		Name:          chk.Name,
		Status:        chk.Status,
		Reason:        chk.Reason,
		RoundsRun:     chk.RoundsRun,
		DroppedRounds: chk.Dropped,
		Rounds:        cs.Rounds,
		Spent:         chk.Spent,
		Remaining:     chk.Remaining,
		Converged:     chk.Status == campaign.StatusConverged,
		Fit:           chk.Fit,
		TotalMakespan: chk.TotalMakespan,
	}
}

// handleCampaignByID routes GET and DELETE for one campaign back to
// its owner and rewrites the reply id to the cluster-wide form. When
// the owner is unreachable, a GET falls back to the node's follower
// replica (stale-labeled); a DELETE still fails — writes wait for
// promotion.
func (rt *Router) handleCampaignByID(w http.ResponseWriter, r *http.Request) {
	full := r.PathValue("id")
	node, rest, ok := splitID(full)
	if !ok {
		writeError(w, http.StatusNotFound, "campaign id %q has no node prefix", full)
		return
	}
	if _, known := rt.cl.NodeURL(node); !known {
		writeError(w, http.StatusNotFound, "unknown node %q in campaign id %q", node, full)
		return
	}
	status, _, raw, err := rt.call(r, node, "/v1/campaigns/"+rest, nil)
	if err != nil {
		if r.Method == http.MethodGet {
			if st := rt.replicaState(node); st != nil {
				rt.serveReplicaCampaign(w, st, node, full, rest)
				return
			}
		}
		writeEnvelope(w, http.StatusServiceUnavailable, server.CodeOverloaded, time.Second,
			"node %q unreachable: %v", node, err)
		return
	}
	if status == http.StatusOK {
		var reply server.CampaignGetResponse
		if err := json.Unmarshal(raw, &reply); err == nil {
			reply.ID = full
			writeJSON(w, status, reply)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
}

// serveReplicaCampaign answers a campaign GET from a node's follower
// replica: correct as of the replica's last shipped record, labeled
// stale in both the body and the X-HT-Stale header.
func (rt *Router) serveReplicaCampaign(w http.ResponseWriter, st *store.State, node, full, rest string) {
	cs, ok := st.Campaigns[rest]
	if !ok {
		// A finished campaign may have been archived out of live state.
		for i := range st.Archived {
			if st.Archived[i].ID == rest {
				cs = &store.CampaignState{Checkpoint: st.Archived[i].Checkpoint, Rounds: st.Archived[i].Rounds}
				ok = true
				break
			}
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q on node %q's replica (stale read; the node itself is unreachable)", rest, node)
		return
	}
	rt.staleReads.Add(1)
	w.Header().Set(staleHeader, node)
	writeJSON(w, http.StatusOK, server.CampaignGetResponse{ID: full, Stale: true, Result: replicaResult(cs)})
}

// handleCampaignList fans out, prefixes every summary id, and merges.
// Unreachable nodes contribute their follower replicas' campaigns
// instead (when a replica source is configured), with the node named in
// staleNodes so a reader knows which summaries may trail.
func (rt *Router) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	var all []campaign.Summary
	var stale []string
	for _, n := range rt.cl.Nodes() {
		status, _, raw, err := rt.call(r, n.Name, "/v1/campaigns", nil)
		if err != nil || status != http.StatusOK {
			// The node is down: list its replica's view until promotion
			// brings the campaigns back live.
			if st := rt.replicaState(n.Name); st != nil {
				for _, id := range sortedStateCampaignIDs(st) {
					cs := st.Campaigns[id]
					all = append(all, campaign.Summary{
						ID:        n.Name + "-" + id,
						Name:      cs.Checkpoint.Name,
						Status:    cs.Checkpoint.Status,
						RoundsRun: cs.Checkpoint.RoundsRun,
						Spent:     cs.Checkpoint.Spent,
						Converged: cs.Checkpoint.Status == campaign.StatusConverged,
					})
				}
				rt.staleReads.Add(1)
				stale = append(stale, n.Name)
			}
			continue
		}
		var reply server.CampaignListResponse
		if err := json.Unmarshal(raw, &reply); err != nil {
			continue
		}
		for _, sum := range reply.Campaigns {
			sum.ID = n.Name + "-" + sum.ID
			all = append(all, sum)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if len(stale) > 0 {
		w.Header().Set(staleHeader, strings.Join(stale, ","))
	}
	writeJSON(w, http.StatusOK, server.CampaignListResponse{Campaigns: all, StaleNodes: stale})
}

// sortedStateCampaignIDs orders a replica state's campaign ids for a
// deterministic listing.
func sortedStateCampaignIDs(st *store.State) []string {
	ids := make([]string, 0, len(st.Campaigns))
	for id := range st.Campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RouterStats is the router's own counter block in the fan-out docs.
type RouterStats struct {
	// Proxied counts node requests issued.
	Proxied uint64 `json:"proxied"`
	// Scattered counts campaigns started through the scatter path.
	Scattered uint64 `json:"scattered"`
	// Failovers counts follower promotions (maintained by cmd/htrouter).
	Failovers uint64 `json:"failovers"`
	// StaleReads counts reads served from follower replicas while their
	// nodes were down but not yet promoted.
	StaleReads uint64 `json:"staleReads"`
	// Nodes is the membership view.
	Nodes []NodeStatus `json:"nodes"`
	// Endpoints are the router's own per-route latency histograms.
	Endpoints map[string]traffic.HistogramSnapshot `json:"endpoints"`
}

// Stats snapshots the router.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Proxied:    rt.proxied.Load(),
		Scattered:  rt.scattered.Load(),
		Failovers:  rt.failovers.Load(),
		StaleReads: rt.staleReads.Load(),
		Nodes:      rt.cl.Nodes(),
		Endpoints:  rt.hist.Snapshot(),
	}
}

// AddFailover bumps the failover counter (cmd/htrouter calls it at
// each promotion).
func (rt *Router) AddFailover() { rt.failovers.Add(1) }

// staleNodeDoc is an unreachable node's entry in the stats/metrics
// fan-out when its follower replica could stand in: a durable-state
// summary, explicitly labeled — not the node's own counters, which died
// with the process.
type staleNodeDoc struct {
	Stale bool `json:"stale"`
	// LastSeq is the replica's durable cursor; Records and Campaigns
	// summarize the replicated state behind it.
	LastSeq   uint64 `json:"lastSeq"`
	Records   uint64 `json:"records"`
	Campaigns int    `json:"campaigns"`
	Archived  int    `json:"archived"`
}

// handleFanout serves GET /v1/stats and /v1/metrics as a cluster
// document: the router's own counters plus each node's verbatim reply.
// An unreachable node contributes a stale-labeled summary of its
// follower replica instead of silently vanishing from the document.
func (rt *Router) handleFanout(w http.ResponseWriter, r *http.Request) {
	nodes := make(map[string]json.RawMessage)
	for _, n := range rt.cl.Nodes() {
		status, _, raw, err := rt.call(r, n.Name, r.URL.Path, nil)
		if err != nil || status != http.StatusOK {
			if st := rt.replicaState(n.Name); st != nil {
				doc, merr := json.Marshal(staleNodeDoc{
					Stale: true, LastSeq: st.LastSeq, Records: st.Records,
					Campaigns: len(st.Campaigns), Archived: len(st.Archived),
				})
				if merr == nil {
					rt.staleReads.Add(1)
					nodes[n.Name] = doc
				}
			}
			continue
		}
		nodes[n.Name] = raw
	}
	writeJSON(w, http.StatusOK, map[string]any{"router": rt.Stats(), "nodes": nodes})
}
