package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hputune/internal/inference"
	"hputune/internal/pricing"
	"hputune/internal/server"
	"hputune/internal/trace"
	"hputune/internal/workload"
)

// The merger suite is this PR's correctness proof: ingest partitions by
// client identity, so before the fit exchange each node's published
// model covers only its own slice of the trace stream — a "fitted"
// solve answered by different nodes priced differently. After one
// exchange round every node must serve a fit bit-identical to a single
// process that ingested the concatenated trace, and the bit-identity
// must survive killing a node mid-exchange and promoting its replica.

// mergerPrices/mergerClients shape the parity workload: enough clients
// that the ring spreads them, dyadic durations so float sums are exact
// in any partition order (see workload.DyadicTrace).
var (
	mergerPrices  = []int{2, 4, 6, 8}
	mergerClients = []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
)

// ingestClientTrace posts one client's deterministic trace through the
// given URL with the client's identity header set.
func ingestClientTrace(t *testing.T, url, client string) {
	t.Helper()
	recs := workload.DyadicTrace(client, mergerPrices, 8)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, recs); err != nil {
		t.Fatalf("encode trace: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/ingest", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.DefaultClientHeader, client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest %s: status %d", client, resp.StatusCode)
	}
}

// referenceFit ingests every client's trace, concatenated, into one
// in-memory server and returns its published fit.
func referenceFit(t *testing.T) pricing.Linear {
	t.Helper()
	ref, err := server.New(server.Config{Node: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	ts := httptest.NewServer(ref.Handler())
	t.Cleanup(ts.Close)
	for _, c := range mergerClients {
		ingestClientTrace(t, ts.URL, c)
	}
	fit, ok := ref.Fit()
	if !ok {
		t.Fatal("reference server published no fit")
	}
	return fit
}

// sameFit reports bit-identity of two linear models.
func sameFit(a, b pricing.Linear) bool {
	return math.Float64bits(a.K) == math.Float64bits(b.K) &&
		math.Float64bits(a.B) == math.Float64bits(b.B)
}

// fittedSolveDoc prices against the node's current published fit.
const fittedSolveDoc = `{"budget": 60, "groups": [
  {"name": "g", "tasks": 6, "reps": 2, "procRate": 2.0,
   "model": {"kind": "fitted"}}]}`

// TestClusterMergedFitMatchesReference is the acceptance parity test:
// disjoint client partitions ingested through the router diverge per
// node (the bug), then one merger tick publishes a fit bit-identical to
// the single-process reference on every node, and a "fitted" solve
// through the router answers byte-identically to the reference no
// matter which node takes it.
func TestClusterMergedFitMatchesReference(t *testing.T) {
	want := referenceFit(t)

	cl, _, rts, nodes := newTestCluster(t, 3)
	for _, c := range mergerClients {
		ingestClientTrace(t, rts.URL, c)
	}
	touched := 0
	for _, n := range nodes {
		if n.srv.Metrics().Serve.Ingests > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("all clients landed on one node; partition parity proves nothing")
	}
	// The divergence under test: at least one node's own-partition fit
	// differs from the whole-trace reference before any exchange.
	diverged := 0
	for _, n := range nodes {
		if fit, ok := n.srv.Fit(); ok && !sameFit(fit, want) {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatalf("every per-partition fit already equals the reference; the workload exercises nothing")
	}

	mg := NewMerger(cl, nil, t.Logf)
	if err := mg.Tick(context.Background()); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	for _, n := range nodes {
		fit, ok := n.srv.Fit()
		if !ok {
			t.Fatalf("node %s has no fit after the exchange", n.name)
		}
		if !sameFit(fit, want) {
			t.Fatalf("node %s fit %v/%v diverges from reference %v/%v",
				n.name, fit.K, fit.B, want.K, want.B)
		}
	}
	st := mg.Stats()
	if st.Merges != 1 || st.Pushes != 3 || st.PushFailures != 0 {
		t.Fatalf("merger stats %+v, want 1 merge and 3 pushes", st)
	}

	// Byte-identical pricing: the same fitted solve through the router
	// (round-robin hits every node) and against the reference fit.
	refSrv, err := server.New(server.Config{Node: "refsolve"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(refSrv.Close)
	refTS := httptest.NewServer(refSrv.Handler())
	t.Cleanup(refTS.Close)
	for _, c := range mergerClients {
		ingestClientTrace(t, refTS.URL, c)
	}
	_, wantBody := postDoc(t, refTS.URL+"/v1/solve", fittedSolveDoc)
	for i := 0; i < 3; i++ {
		resp, got := postDoc(t, rts.URL+"/v1/solve", fittedSolveDoc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fitted solve %d: status %d: %s", i, resp.StatusCode, got)
		}
		if string(got) != string(wantBody) {
			t.Fatalf("fitted solve %d diverged\n got  %s\n want %s", i, got, wantBody)
		}
	}
}

// TestClusterMergedFitSurvivesNodeKillMidExchange kills a node between
// exchange rounds: the tick that finds it dead must abort without
// publishing a partial-union fit, the survivors keep serving the merged
// model, and the promoted replica restores the merged fit and its
// durable aggregates bit-identically, so the next tick over the healed
// cluster still equals the single-process reference.
func TestClusterMergedFitSurvivesNodeKillMidExchange(t *testing.T) {
	want := referenceFit(t)

	cl, rts, nodes := drillCluster(t, drillNames, nil)
	for _, n := range nodes {
		stop := pollFollower(n.fol)
		defer stop()
	}
	for _, c := range mergerClients {
		ingestClientTrace(t, rts.URL, c)
	}
	mg := NewMerger(cl, nil, t.Logf)
	if err := mg.Tick(context.Background()); err != nil {
		t.Fatalf("first Tick: %v", err)
	}
	for _, name := range drillNames {
		fit, ok := nodes[name].srv.Fit()
		if !ok || !sameFit(fit, want) {
			t.Fatalf("node %s fit after first exchange != reference", name)
		}
	}

	// Let the followers ship the merged-fit records before the kill.
	victim := "n1"
	v := nodes[victim]
	waitFor(t, 30*time.Second, "followers caught up", func() bool {
		for _, name := range drillNames {
			if nodes[name].fol.Stats().LastSeq < nodes[name].st.Metrics().LastSeq {
				return false
			}
		}
		return true
	})
	killNode(t, v)

	// Mid-exchange kill: the pull phase fails on the dead node, the tick
	// aborts, and nothing was pushed anywhere — survivors keep the exact
	// merged fit from before.
	if err := mg.Tick(context.Background()); err == nil {
		t.Fatal("Tick with a dead node returned nil; a partial-union fit may have been published")
	}
	if st := mg.Stats(); st.Skipped == 0 {
		t.Fatalf("stats %+v: the aborted tick was not counted as skipped", st)
	}
	for _, name := range drillNames {
		if name == victim {
			continue
		}
		fit, ok := nodes[name].srv.Fit()
		if !ok || !sameFit(fit, want) {
			t.Fatalf("survivor %s fit changed across the aborted exchange", name)
		}
	}

	// Promotion replays the shipped WAL — including the merged-fit
	// record — through the standard recovery path.
	st2, srv2, err := v.fol.Promote(server.Config{Node: victim})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer st2.Close()
	fit, ok := srv2.Fit()
	if !ok {
		t.Fatal("promoted replica lost the merged fit")
	}
	if !sameFit(fit, want) {
		t.Fatalf("promoted replica fit %v/%v != reference %v/%v", fit.K, fit.B, want.K, want.B)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if err := cl.Repoint(victim, ts2.URL); err != nil {
		t.Fatalf("repoint: %v", err)
	}

	// The healed cluster's next exchange runs over the replica's durable
	// aggregates and still lands exactly on the reference.
	if err := mg.Tick(context.Background()); err != nil {
		t.Fatalf("Tick after promotion: %v", err)
	}
	for _, name := range drillNames {
		srv := nodes[name].srv
		if name == victim {
			srv = srv2
		}
		fit, ok := srv.Fit()
		if !ok || !sameFit(fit, want) {
			t.Fatalf("node %s fit after promotion exchange != reference", name)
		}
	}
}

// TestMergedFitPushIsGuarded pins the publish guard on the exchange
// path: a merged fit with a negative slope (or a non-positive rate at
// price 1) must be refused with the node's previous fit kept live, in
// both the in-memory and durable publish paths.
func TestMergedFitPushIsGuarded(t *testing.T) {
	srv, err := server.New(server.Config{Node: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	post := func(body string) (server.MergedFitResponse, int) {
		t.Helper()
		resp, raw := postDoc(t, ts.URL+"/v1/replication/fit", body)
		var doc server.MergedFitResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &doc); err != nil {
				t.Fatalf("decode reply: %v: %s", err, raw)
			}
		}
		return doc, resp.StatusCode
	}

	if doc, status := post(`{"fit":{"slope":-0.5,"intercept":2,"r2":1,"se":0,"n":4,"prices":2}}`); status != 200 || doc.Published || doc.FitPending == "" {
		t.Fatalf("negative slope: status %d, doc %+v; want kept-previous-fit reply", status, doc)
	}
	if doc, status := post(`{"fit":{"slope":0.1,"intercept":-5,"r2":1,"se":0,"n":4,"prices":2}}`); status != 200 || doc.Published {
		t.Fatalf("non-positive rate at price 1: status %d, doc %+v", status, doc)
	}
	if _, status := post(`{"fit":{"slope":0.1,"intercept":0.5,"r2":1,"se":0,"n":1,"prices":1}}`); status != 400 {
		t.Fatalf("degenerate fit: status %d, want 400", status)
	}
	if _, status := post(`{"fit":{"slope":0.1},"bogus":1}`); status != 400 {
		t.Fatalf("unknown field: status %d, want 400", status)
	}
	if _, ok := srv.Fit(); ok {
		t.Fatal("a refused merged fit was published")
	}

	if doc, status := post(`{"fit":{"slope":0.25,"intercept":0.5,"r2":0.99,"se":0.01,"n":8,"prices":4},"sources":{"n0":7}}`); status != 200 || !doc.Published {
		t.Fatalf("legal fit: status %d, doc %+v", status, doc)
	}
	fit, ok := srv.Fit()
	if !ok || fit.K != 0.25 || fit.B != 0.5 {
		t.Fatalf("published fit %v %v", fit, ok)
	}
}

// TestDecodeAggregates pins the exchange codec's validation: a payload
// that decodes as JSON but violates the aggregate invariants must be
// rejected before it can poison the cluster-wide merged fit.
func TestDecodeAggregates(t *testing.T) {
	good := server.ReplicationAggregatesResponse{
		Node: "n0", Version: 9, Records: 10,
		Aggs: map[int]inference.PriceAggregate{2: {N: 4, Total: 8.5}, 5: {N: 6, Total: 3.25}},
	}
	raw, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeAggregates(raw)
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if doc.Node != "n0" || doc.Version != 9 || len(doc.Aggs) != 2 || doc.Aggs[2] != good.Aggs[2] {
		t.Fatalf("round-trip lost data: %+v", doc)
	}

	bad := []struct {
		name, body string
	}{
		{"not json", `]`},
		{"unknown field", `{"node":"x","version":1,"records":1,"aggs":{},"extra":1}`},
		{"trailing data", `{"node":"x","version":1,"records":1,"aggs":{}} {}`},
		{"price zero", `{"node":"x","version":1,"records":1,"aggs":{"0":{"N":1,"Total":1}}}`},
		{"negative price", `{"node":"x","version":1,"records":1,"aggs":{"-3":{"N":1,"Total":1}}}`},
		{"negative count", `{"node":"x","version":1,"records":1,"aggs":{"2":{"N":-1,"Total":1}}}`},
		{"negative total", `{"node":"x","version":1,"records":1,"aggs":{"2":{"N":1,"Total":-0.5}}}`},
		{"counts exceed records", `{"node":"x","version":1,"records":3,"aggs":{"2":{"N":2,"Total":1},"4":{"N":2,"Total":1}}}`},
	}
	for _, tc := range bad {
		if _, err := DecodeAggregates([]byte(tc.body)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// FuzzAggregatesDecode drives arbitrary bytes through the exchange
// codec: it must never panic, and anything it accepts must satisfy the
// invariants the merger relies on (legal prices, finite non-negative
// aggregates, counts within the reported record total).
func FuzzAggregatesDecode(f *testing.F) {
	good := server.ReplicationAggregatesResponse{
		Node: "n0", Version: 3, Records: 6,
		Aggs: map[int]inference.PriceAggregate{2: {N: 3, Total: 4.5}, 7: {N: 3, Total: 1.25}},
	}
	if raw, err := json.Marshal(good); err == nil {
		f.Add(raw)
	}
	f.Add([]byte(`{"node":"x","version":1,"records":1,"aggs":{}}`))
	f.Add([]byte(`{"node":"x","version":1,"records":1,"aggs":{"2":{"N":-1,"Total":1}}}`))
	f.Add([]byte(`{"aggs":{"0":{"N":1,"Total":-1}}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := DecodeAggregates(data)
		if err != nil {
			if !strings.Contains(err.Error(), "cluster:") {
				t.Fatalf("error %v lost the package prefix", err)
			}
			return
		}
		var total uint64
		for price, agg := range doc.Aggs {
			if price < 1 {
				t.Fatalf("accepted price %d", price)
			}
			if agg.N < 0 || !(agg.Total >= 0) || math.IsInf(agg.Total, 1) {
				t.Fatalf("accepted aggregate %+v at price %d", agg, price)
			}
			total += uint64(agg.N)
		}
		if total > doc.Records {
			t.Fatalf("accepted %d observations over %d records", total, doc.Records)
		}
		// An accepted document is a legal FitAggregates input: the fit may
		// be degenerate (fewer than two priced levels) but must not panic.
		_, _ = inference.FitAggregates(doc.Aggs)
	})
}

// TestMergerRunLogsAbortTransitionsOnce pins Run's log discipline: an
// unreachable partition logs one abort event on the first failing tick
// — not one per tick, an outage spanning the whole failover window
// would flood the log at the exchange interval — and one recovery event
// once a tick succeeds again. (The repointed node is empty, so the tick
// "succeeds" via the fewer-than-two-prices skip: still a nil Tick, which
// is the recovery signal an operator cares about.)
func TestMergerRunLogsAbortTransitionsOnce(t *testing.T) {
	cl := New(Config{})
	if err := cl.AddNode("n0", "http://127.0.0.1:9"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []string
	mg := NewMerger(cl, nil, func(format string, args ...any) {
		mu.Lock()
		events = append(events, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	count := func(sub string) int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, e := range events {
			if strings.Contains(e, sub) {
				n++
			}
		}
		return n
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); mg.Run(ctx, time.Millisecond) }()

	waitFor(t, 30*time.Second, "three aborted ticks", func() bool {
		return mg.Stats().Skipped >= 3
	})
	if got := count("fit exchange aborted"); got != 1 {
		t.Fatalf("want exactly 1 abort event after >= 3 failed ticks, got %d", got)
	}

	srv, err := server.New(server.Config{Node: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := cl.Repoint("n0", ts.URL); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "recovery event", func() bool {
		return count("fit exchange recovered") >= 1
	})
	cancel()
	<-done
	if got := count("fit exchange recovered"); got != 1 {
		t.Fatalf("want exactly 1 recovery event, got %d", got)
	}
	if got := count("fit exchange aborted"); got != 1 {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("abort event repeated across identical failures: got %d\n%s", got, strings.Join(events, "\n"))
	}
}
