// Package stats provides the statistical validation substrate for the
// reproduction of "Tuning Crowdsourced Human Computation" (Cao et al.,
// ICDE 2017): empirical CDFs, goodness-of-fit tests for the exponential
// latency model the paper assumes (Sec 3.1–3.2), and exact confidence
// intervals for the clock-rate MLE λ̂ = N/T₀ (Sec 3.3, Appendix A).
//
// The paper justifies its model empirically ("the arrival epochs of the
// workers exhibit linearity, indicating the suitability of the Poisson
// Process Model", Fig 3); this package supplies the machinery to make
// that check quantitative against the simulated marketplace: a
// Kolmogorov–Smirnov test against a hypothesized CDF, a Lilliefors-style
// Monte-Carlo test for exponentiality with estimated rate, and a binned
// chi-square test.
package stats

import (
	"fmt"
	"math"
	"sort"

	"hputune/internal/numeric"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n−1 denominator)
	Std      float64
	Min      float64
	Max      float64
	Median   float64
	Q25, Q75 float64
}

// Summarize computes descriptive statistics. It returns an error for an
// empty sample or one containing NaN.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("stats: empty sample")
	}
	for i, x := range xs {
		if math.IsNaN(x) {
			return Summary{}, fmt.Errorf("stats: NaN at index %d", i)
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:        len(xs),
		Mean:     numeric.Mean(xs),
		Variance: numeric.Variance(xs),
		Min:      sorted[0],
		Max:      sorted[len(sorted)-1],
		Median:   quantileSorted(sorted, 0.5),
		Q25:      quantileSorted(sorted, 0.25),
		Q75:      quantileSorted(sorted, 0.75),
	}
	s.Std = math.Sqrt(s.Variance)
	return s, nil
}

// quantileSorted returns the q-quantile of a sorted sample by linear
// interpolation between closest ranks (type-7, the R default).
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an unsorted sample.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0, 1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}
