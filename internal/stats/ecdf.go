package stats

import (
	"fmt"
	"sort"
)

// ECDF is the empirical cumulative distribution function of a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds the ECDF of xs (copied, then sorted).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: ECDF of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Eval returns F̂(t) = (#samples ≤ t)/n.
func (e *ECDF) Eval(t float64) float64 {
	// First index with sorted[i] > t.
	i := sort.SearchFloat64s(e.sorted, t)
	for i < len(e.sorted) && e.sorted[i] == t {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0, 1]", q)
	}
	return quantileSorted(e.sorted, q), nil
}

// Sorted returns the sorted sample (shared, do not mutate).
func (e *ECDF) Sorted() []float64 { return e.sorted }
