package stats

import (
	"fmt"
	"math"
	"sort"

	"hputune/internal/randx"
)

// KSResult is the outcome of a Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic sup_t |F̂(t) − F(t)|.
	D float64
	// P is the p-value of D under the null hypothesis. For KSTest it is
	// the asymptotic Kolmogorov p-value (valid for fully specified F);
	// for KSExponential it is a Monte-Carlo Lilliefors p-value that
	// accounts for the estimated rate.
	P float64
	// N is the sample size.
	N int
}

// Reject reports whether the null is rejected at significance level alpha.
func (r KSResult) Reject(alpha float64) bool { return r.P < alpha }

// KSTest runs the one-sample Kolmogorov–Smirnov test of xs against the
// fully specified continuous CDF F.
func KSTest(xs []float64, cdf func(float64) float64) (KSResult, error) {
	d, n, err := ksStatistic(xs, cdf)
	if err != nil {
		return KSResult{}, err
	}
	return KSResult{D: d, P: kolmogorovP(d, n), N: n}, nil
}

// ksStatistic computes D = sup |F̂ − F| over the sample points, using the
// standard two-sided formula max(i/n − F(x_i), F(x_i) − (i−1)/n).
func ksStatistic(xs []float64, cdf func(float64) float64) (float64, int, error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: KS test on empty sample")
	}
	if cdf == nil {
		return 0, 0, fmt.Errorf("stats: KS test with nil CDF")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		if math.IsNaN(f) {
			return 0, 0, fmt.Errorf("stats: CDF returned NaN at %v", x)
		}
		if hi := float64(i+1)/float64(n) - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/float64(n); lo > d {
			d = lo
		}
	}
	return d, n, nil
}

// kolmogorovP returns the asymptotic two-sided p-value
// P(D_n > d) ≈ 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²) with
// λ = d(√n + 0.12 + 0.11/√n) — the Stephens finite-n adjustment.
func kolmogorovP(d float64, n int) float64 {
	sn := math.Sqrt(float64(n))
	lambda := d * (sn + 0.12 + 0.11/sn)
	if lambda < 1e-9 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum) {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// KSExponential tests whether xs is exponentially distributed with
// unknown rate (Lilliefors variant): the rate is estimated by MLE from
// the sample itself, which makes the plain Kolmogorov p-value badly
// conservative, so the null distribution of D is simulated with mcTrials
// Monte-Carlo replications (exponential samples of the same size, rate
// re-estimated per replication). r drives the simulation and must not be
// nil; mcTrials of 1000 gives p-value resolution of about 0.03.
func KSExponential(xs []float64, mcTrials int, r *randx.Rand) (KSResult, error) {
	if len(xs) < 2 {
		return KSResult{}, fmt.Errorf("stats: exponentiality test needs >= 2 samples, got %d", len(xs))
	}
	if mcTrials < 100 {
		return KSResult{}, fmt.Errorf("stats: need >= 100 Monte-Carlo trials, got %d", mcTrials)
	}
	if r == nil {
		return KSResult{}, fmt.Errorf("stats: nil random source")
	}
	mean := 0.0
	for i, x := range xs {
		if !(x >= 0) {
			return KSResult{}, fmt.Errorf("stats: sample %d is %v, exponential data must be >= 0", i, x)
		}
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return KSResult{}, fmt.Errorf("stats: all samples are zero")
	}
	rate := 1 / mean
	d, n, err := ksStatistic(xs, func(t float64) float64 {
		if t < 0 {
			return 0
		}
		return 1 - math.Exp(-rate*t)
	})
	if err != nil {
		return KSResult{}, err
	}
	// Null distribution of D with estimated rate, by simulation.
	exceed := 0
	sample := make([]float64, n)
	for trial := 0; trial < mcTrials; trial++ {
		sum := 0.0
		for i := range sample {
			sample[i] = r.Exp(1)
			sum += sample[i]
		}
		trialRate := float64(n) / sum
		td, _, err := ksStatistic(sample, func(t float64) float64 {
			if t < 0 {
				return 0
			}
			return 1 - math.Exp(-trialRate*t)
		})
		if err != nil {
			return KSResult{}, err
		}
		if td >= d {
			exceed++
		}
	}
	// Add-one smoothing keeps the p-value away from an exact 0 the MC
	// resolution cannot support.
	p := (float64(exceed) + 1) / (float64(mcTrials) + 1)
	return KSResult{D: d, P: p, N: n}, nil
}
