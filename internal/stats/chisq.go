package stats

import (
	"fmt"
	"math"

	"hputune/internal/numeric"
)

// ChiSquareCDF returns P(X ≤ x) for X ~ χ²(k), via the regularized lower
// incomplete gamma function P(k/2, x/2).
func ChiSquareCDF(k int, x float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("stats: chi-square needs >= 1 degree of freedom, got %d", k)
	}
	if x <= 0 {
		return 0, nil
	}
	return numeric.RegularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareQuantile returns the q-quantile of χ²(k) by bisection on the
// CDF. q must lie in (0, 1).
func ChiSquareQuantile(k int, q float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("stats: chi-square needs >= 1 degree of freedom, got %d", k)
	}
	if !(q > 0 && q < 1) {
		return 0, fmt.Errorf("stats: quantile %v outside (0, 1)", q)
	}
	// Bracket: the mean is k, the variance 2k; go wide enough for any q.
	hi := float64(k) + 20*math.Sqrt(2*float64(k)) + 50
	for {
		c, err := ChiSquareCDF(k, hi)
		if err != nil {
			return 0, err
		}
		if c > q {
			break
		}
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("stats: chi-square quantile bracket failed for k=%d q=%v", k, q)
		}
	}
	return numeric.Bisect(func(x float64) float64 {
		c, err := ChiSquareCDF(k, x)
		if err != nil {
			return math.NaN()
		}
		return c - q
	}, 0, hi, 1e-10)
}

// ChiSquareResult is the outcome of a binned goodness-of-fit test.
type ChiSquareResult struct {
	// Stat is Σ (observed − expected)²/expected over the bins.
	Stat float64
	// DF is the degrees of freedom (bins − 1 − estimated parameters).
	DF int
	// P is P(χ²(DF) > Stat).
	P float64
	// Bins is the number of bins used after merging sparse tails.
	Bins int
}

// Reject reports whether the null is rejected at significance level alpha.
func (r ChiSquareResult) Reject(alpha float64) bool { return r.P < alpha }

// ChiSquareExponential runs a binned chi-square goodness-of-fit test of
// xs against an exponential with rate estimated from the sample (one
// estimated parameter). Bins are equiprobable under the fitted null,
// sized so the expected count per bin is at least 5 (merging if the
// sample is small).
func ChiSquareExponential(xs []float64) (ChiSquareResult, error) {
	n := len(xs)
	if n < 15 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square exponential test needs >= 15 samples, got %d", n)
	}
	sum := 0.0
	for i, x := range xs {
		if !(x >= 0) {
			return ChiSquareResult{}, fmt.Errorf("stats: sample %d is %v, exponential data must be >= 0", i, x)
		}
		sum += x
	}
	if sum == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: all samples are zero")
	}
	rate := float64(n) / sum

	bins := n / 5
	if bins > 20 {
		bins = 20
	}
	if bins < 3 {
		bins = 3
	}
	// Equiprobable bin edges under Exp(rate): edge_i = −ln(1 − i/bins)/rate.
	counts := make([]int, bins)
	for _, x := range xs {
		u := 1 - math.Exp(-rate*x)
		i := int(u * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	expected := float64(n) / float64(bins)
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	df := bins - 1 - 1 // one parameter (the rate) was estimated
	if df < 1 {
		df = 1
	}
	cdf, err := ChiSquareCDF(df, stat)
	if err != nil {
		return ChiSquareResult{}, err
	}
	return ChiSquareResult{Stat: stat, DF: df, P: 1 - cdf, Bins: bins}, nil
}
