package stats

import (
	"fmt"
)

// RateCI is an exact confidence interval for an exponential/Poisson clock
// rate λ, the quantity the paper's probes estimate (Sec 3.3).
type RateCI struct {
	// Lo and Hi bound λ at the requested confidence.
	Lo, Hi float64
	// Point is the MLE λ̂ = N/T₀.
	Point float64
	// Confidence is the coverage level, e.g. 0.95.
	Confidence float64
}

// Width returns Hi − Lo.
func (c RateCI) Width() float64 { return c.Hi - c.Lo }

// Contains reports whether rate lies inside the interval.
func (c RateCI) Contains(rate float64) bool { return rate >= c.Lo && rate <= c.Hi }

// RateIntervalFromDurations returns the exact CI for λ from n iid Exp(λ)
// observations with total duration total: 2λ·total ~ χ²(2n), so
// λ ∈ [χ²(2n, α/2)/(2·total), χ²(2n, 1−α/2)/(2·total)].
// This covers the paper's "Random Period" probe, where observation stops
// at the n-th acceptance.
func RateIntervalFromDurations(n int, total float64, confidence float64) (RateCI, error) {
	if n < 1 {
		return RateCI{}, fmt.Errorf("stats: need >= 1 observation, got %d", n)
	}
	if !(total > 0) {
		return RateCI{}, fmt.Errorf("stats: total duration must be positive, got %v", total)
	}
	if !(confidence > 0 && confidence < 1) {
		return RateCI{}, fmt.Errorf("stats: confidence %v outside (0, 1)", confidence)
	}
	alpha := 1 - confidence
	lo, err := ChiSquareQuantile(2*n, alpha/2)
	if err != nil {
		return RateCI{}, err
	}
	hi, err := ChiSquareQuantile(2*n, 1-alpha/2)
	if err != nil {
		return RateCI{}, err
	}
	return RateCI{
		Lo:         lo / (2 * total),
		Hi:         hi / (2 * total),
		Point:      float64(n) / total,
		Confidence: confidence,
	}, nil
}

// RateIntervalFromCount returns the exact CI for a Poisson arrival rate λ
// from observing n events over a fixed horizon T₀ (the paper's "Fixed
// Period" probe): the Garwood interval
// λ ∈ [χ²(2n, α/2)/(2T₀), χ²(2n+2, 1−α/2)/(2T₀)], with Lo = 0 when n = 0.
func RateIntervalFromCount(n int, horizon float64, confidence float64) (RateCI, error) {
	if n < 0 {
		return RateCI{}, fmt.Errorf("stats: negative event count %d", n)
	}
	if !(horizon > 0) {
		return RateCI{}, fmt.Errorf("stats: horizon must be positive, got %v", horizon)
	}
	if !(confidence > 0 && confidence < 1) {
		return RateCI{}, fmt.Errorf("stats: confidence %v outside (0, 1)", confidence)
	}
	alpha := 1 - confidence
	lo := 0.0
	if n > 0 {
		q, err := ChiSquareQuantile(2*n, alpha/2)
		if err != nil {
			return RateCI{}, err
		}
		lo = q / (2 * horizon)
	}
	hiQ, err := ChiSquareQuantile(2*n+2, 1-alpha/2)
	if err != nil {
		return RateCI{}, err
	}
	return RateCI{
		Lo:         lo,
		Hi:         hiQ / (2 * horizon),
		Point:      float64(n) / horizon,
		Confidence: confidence,
	}, nil
}
