package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hputune/internal/randx"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary wrong: %+v", s)
	}
	if !almostEqual(s.Variance, 2.5, 1e-12) {
		t.Errorf("variance %v, want 2.5", s.Variance)
	}
	if !almostEqual(s.Q25, 2, 1e-12) || !almostEqual(s.Q75, 4, 1e-12) {
		t.Errorf("quartiles %v/%v, want 2/4", s.Q25, s.Q75)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 7 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{3, 1, 2}
	if v, err := Quantile(xs, 0); err != nil || v != 1 {
		t.Errorf("q0 = %v, %v", v, err)
	}
	if v, err := Quantile(xs, 1); err != nil || v != 3 {
		t.Errorf("q1 = %v, %v", v, err)
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("q > 1 accepted")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := randx.New(41)
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	prop := func(a, b float64) bool {
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		va, err1 := Quantile(xs, qa)
		vb, err2 := Quantile(xs, qb)
		return err1 == nil && err2 == nil && va <= vb+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestECDFEval(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.t); got != c.want {
			t.Errorf("F̂(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d, want 4", e.N())
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestECDFMatchesSortedCountProperty(t *testing.T) {
	r := randx.New(97)
	prop := func(seed uint64) bool {
		rr := randx.New(seed)
		n := 1 + rr.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(rr.Float64()*10) / 2 // ties likely
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		t := r.Float64() * 5
		count := 0
		for _, x := range xs {
			if x <= t {
				count++
			}
		}
		return e.Eval(t) == float64(count)/float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKSAgainstTrueModelAccepts(t *testing.T) {
	r := randx.New(7)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Exp(2)
	}
	res, err := KSTest(xs, func(t float64) float64 {
		if t < 0 {
			return 0
		}
		return 1 - math.Exp(-2*t)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("true model rejected: D=%v p=%v", res.D, res.P)
	}
}

func TestKSAgainstWrongModelRejects(t *testing.T) {
	r := randx.New(8)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Exp(2)
	}
	// Null claims rate 0.5, data has rate 2: four-fold mean mismatch.
	res, err := KSTest(xs, func(t float64) float64 {
		if t < 0 {
			return 0
		}
		return 1 - math.Exp(-0.5*t)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("wrong model accepted: D=%v p=%v", res.D, res.P)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSTest(nil, func(float64) float64 { return 0 }); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := KSTest([]float64{1}, nil); err == nil {
		t.Error("nil CDF accepted")
	}
	if _, err := KSTest([]float64{1}, func(float64) float64 { return math.NaN() }); err == nil {
		t.Error("NaN CDF accepted")
	}
}

func TestKolmogorovPMonotone(t *testing.T) {
	// p-value must decrease as D grows.
	prev := 1.0
	for d := 0.01; d < 0.5; d += 0.01 {
		p := kolmogorovP(d, 100)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone at d=%v: %v > %v", d, p, prev)
		}
		prev = p
	}
}

func TestKSExponentialAcceptsExponential(t *testing.T) {
	r := randx.New(21)
	xs := make([]float64, 150)
	for i := range xs {
		xs[i] = r.Exp(0.004) // AMT-scale rate from the paper
	}
	res, err := KSExponential(xs, 500, randx.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("exponential data rejected: D=%v p=%v", res.D, res.P)
	}
}

func TestKSExponentialRejectsUniform(t *testing.T) {
	r := randx.New(23)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 1 + r.Float64() // Uniform(1, 2): nothing like exponential
	}
	res, err := KSExponential(xs, 500, randx.New(24))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.05) {
		t.Errorf("uniform data accepted as exponential: D=%v p=%v", res.D, res.P)
	}
}

func TestKSExponentialErrors(t *testing.T) {
	r := randx.New(1)
	if _, err := KSExponential([]float64{1}, 500, r); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := KSExponential([]float64{1, 2}, 10, r); err == nil {
		t.Error("too few trials accepted")
	}
	if _, err := KSExponential([]float64{1, 2}, 500, nil); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := KSExponential([]float64{-1, 2}, 500, r); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := KSExponential([]float64{0, 0}, 500, r); err == nil {
		t.Error("all-zero sample accepted")
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// χ²(2) is Exp(1/2): CDF(x) = 1 − e^{−x/2}.
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		got, err := ChiSquareCDF(2, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x/2)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("χ²(2) CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Median of χ²(1) ≈ 0.4549.
	got, err := ChiSquareCDF(1, 0.454936)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 1e-4) {
		t.Errorf("χ²(1) CDF(0.4549) = %v, want 0.5", got)
	}
}

func TestChiSquareQuantileRoundTrip(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10, 40} {
		for _, q := range []float64{0.025, 0.5, 0.975} {
			x, err := ChiSquareQuantile(k, q)
			if err != nil {
				t.Fatal(err)
			}
			back, err := ChiSquareCDF(k, x)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(back, q, 1e-7) {
				t.Errorf("k=%d q=%v: CDF(quantile) = %v", k, q, back)
			}
		}
	}
}

func TestChiSquareQuantileKnown(t *testing.T) {
	// χ²(10) 95th percentile ≈ 18.307.
	x, err := ChiSquareQuantile(10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 18.307, 1e-3) {
		t.Errorf("χ²(10) q95 = %v, want 18.307", x)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquareCDF(0, 1); err == nil {
		t.Error("zero df accepted")
	}
	if _, err := ChiSquareQuantile(2, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := ChiSquareQuantile(2, 1); err == nil {
		t.Error("q=1 accepted")
	}
}

func TestChiSquareExponentialAccepts(t *testing.T) {
	r := randx.New(31)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = r.Exp(3)
	}
	res, err := ChiSquareExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("exponential data rejected: stat=%v df=%d p=%v", res.Stat, res.DF, res.P)
	}
}

func TestChiSquareExponentialRejectsErlang(t *testing.T) {
	r := randx.New(33)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Erlang(5, 5) // mean 1 but far less dispersed than Exp
	}
	res, err := ChiSquareExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.05) {
		t.Errorf("Erlang(5) accepted as exponential: stat=%v p=%v", res.Stat, res.P)
	}
}

func TestChiSquareExponentialErrors(t *testing.T) {
	if _, err := ChiSquareExponential([]float64{1, 2, 3}); err == nil {
		t.Error("small sample accepted")
	}
	xs := make([]float64, 20)
	if _, err := ChiSquareExponential(xs); err == nil {
		t.Error("all-zero sample accepted")
	}
	xs[0] = -1
	if _, err := ChiSquareExponential(xs); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestRateIntervalFromDurationsCoverage(t *testing.T) {
	// Empirical coverage of the exact CI should be close to nominal.
	r := randx.New(5)
	const trials = 300
	const n = 20
	const rate = 0.01
	covered := 0
	for trial := 0; trial < trials; trial++ {
		total := 0.0
		for i := 0; i < n; i++ {
			total += r.Exp(rate)
		}
		ci, err := RateIntervalFromDurations(n, total, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(rate) {
			covered++
		}
		if ci.Lo >= ci.Hi {
			t.Fatalf("degenerate interval: %+v", ci)
		}
		if !ci.Contains(ci.Point) {
			t.Fatalf("point estimate outside its own interval: %+v", ci)
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("95%% CI covered %v of trials", frac)
	}
}

func TestRateIntervalFromCountCoverage(t *testing.T) {
	r := randx.New(6)
	const trials = 300
	const rate = 2.0
	const horizon = 10.0
	covered := 0
	for trial := 0; trial < trials; trial++ {
		n := r.Poisson(rate * horizon)
		ci, err := RateIntervalFromCount(n, horizon, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(rate) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 {
		t.Errorf("95%% Garwood CI covered only %v of trials", frac)
	}
}

func TestRateIntervalZeroCount(t *testing.T) {
	ci, err := RateIntervalFromCount(0, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo != 0 {
		t.Errorf("zero-count CI lower bound = %v, want 0", ci.Lo)
	}
	if ci.Hi <= 0 {
		t.Errorf("zero-count CI upper bound = %v, want > 0", ci.Hi)
	}
}

func TestRateIntervalErrors(t *testing.T) {
	if _, err := RateIntervalFromDurations(0, 1, 0.95); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RateIntervalFromDurations(5, 0, 0.95); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := RateIntervalFromDurations(5, 1, 1.5); err == nil {
		t.Error("confidence > 1 accepted")
	}
	if _, err := RateIntervalFromCount(-1, 1, 0.95); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := RateIntervalFromCount(5, -1, 0.95); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := RateIntervalFromCount(5, 1, 0); err == nil {
		t.Error("zero confidence accepted")
	}
}

func TestRateIntervalWidthShrinksWithN(t *testing.T) {
	// Property: with the point estimate held at 1 (total = n), the CI
	// width must shrink as n grows.
	prev := math.Inf(1)
	for _, n := range []int{5, 10, 20, 50, 100} {
		ci, err := RateIntervalFromDurations(n, float64(n), 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Width() >= prev {
			t.Errorf("CI width did not shrink at n=%d: %v >= %v", n, ci.Width(), prev)
		}
		prev = ci.Width()
	}
}

func TestKSStatisticAgainstManual(t *testing.T) {
	// Hand-computed D for a tiny sample against Uniform(0,1).
	xs := []float64{0.1, 0.2, 0.9}
	sort.Float64s(xs)
	res, err := KSTest(xs, func(t float64) float64 {
		switch {
		case t < 0:
			return 0
		case t > 1:
			return 1
		}
		return t
	})
	if err != nil {
		t.Fatal(err)
	}
	// At x=0.2: F̂ jumps to 2/3, F=0.2 → 0.4667 is the sup.
	if !almostEqual(res.D, 2.0/3-0.2, 1e-12) {
		t.Errorf("D = %v, want %v", res.D, 2.0/3-0.2)
	}
}
