package crowddb

import (
	"fmt"
	"sort"
)

// PlanTopKRound emits one round of the tournament top-k operator: the
// survivors are partitioned into pods of podSize, and every pod runs all
// its internal pairwise comparisons in parallel. The caller advances the
// top half of each pod by Copeland score (pairwise wins).
func PlanTopKRound(survivors Dataset, round, reps, podSize int) (Plan, []Dataset, error) {
	if len(survivors) < 2 {
		return Plan{}, nil, fmt.Errorf("crowddb: a top-k round needs at least 2 survivors, got %d", len(survivors))
	}
	if reps < 1 {
		return Plan{}, nil, fmt.Errorf("crowddb: reps must be >= 1, got %d", reps)
	}
	if podSize < 2 {
		return Plan{}, nil, fmt.Errorf("crowddb: pod size must be >= 2, got %d", podSize)
	}
	plan := Plan{Label: fmt.Sprintf("top-k-round-%d", round)}
	var pods []Dataset
	for start := 0; start < len(survivors); start += podSize {
		end := start + podSize
		if end > len(survivors) {
			end = len(survivors)
		}
		pod := survivors[start:end]
		pods = append(pods, pod)
		for i := 0; i < len(pod); i++ {
			for j := i + 1; j < len(pod); j++ {
				plan.Tasks = append(plan.Tasks, VoteTask{
					Kind:  VoteCompare,
					A:     pod[i].ID,
					B:     pod[j].ID,
					Truth: pod[i].Value > pod[j].Value,
					Diff:  compareDifficulty(pod[i], pod[j]),
					Reps:  reps,
				})
			}
		}
	}
	return plan, pods, nil
}

// TopKResult is the outcome of a crowd top-k query.
type TopKResult struct {
	// TopK holds the chosen ids, best first by the final round's scores.
	TopK []string
	// Makespan is the wall clock across all sequential rounds.
	Makespan float64
	// Rounds holds the per-round outcomes.
	Rounds []PhaseOutcome
}

// Paid returns the total budget units spent across rounds.
func (t TopKResult) Paid() int {
	total := 0
	for _, p := range t.Rounds {
		total += p.Paid
	}
	return total
}

// RunTopK executes the tournament top-k query (Davidson et al.,
// reference [10] of the paper): rounds of pod-local pairwise voting
// eliminate the bottom half of each pod until at most max(2k, podSize)
// survivors remain, then one full pairwise round ranks the finalists and
// the best k are returned. Each round is a parallel marketplace phase;
// rounds run sequentially, so the makespan accumulates — exactly the
// multi-phase job structure whose latency the H-Tuning problem prices.
func (e *Executor) RunTopK(items Dataset, k, reps int, policy PricePolicy) (TopKResult, error) {
	if len(items) == 0 {
		return TopKResult{}, fmt.Errorf("crowddb: top-k needs items")
	}
	if k < 1 {
		return TopKResult{}, fmt.Errorf("crowddb: k must be >= 1, got %d", k)
	}
	if k >= len(items) {
		return TopKResult{TopK: items.ByValue().IDs()}, nil
	}
	const podSize = 4
	byID := make(map[string]Item, len(items))
	for _, it := range items {
		byID[it.ID] = it
	}
	survivors := append(Dataset(nil), items...)
	var result TopKResult
	round := 0
	cut := 2 * k
	if cut < podSize {
		cut = podSize
	}
	for len(survivors) > cut {
		plan, pods, err := PlanTopKRound(survivors, round, reps, podSize)
		if err != nil {
			return TopKResult{}, err
		}
		out, err := e.runRound(plan, policy, round)
		if err != nil {
			return TopKResult{}, err
		}
		result.Makespan += out.Makespan
		result.Rounds = append(result.Rounds, out)
		wins := copelandScores(out.Decisions)
		var next Dataset
		for _, pod := range pods {
			keep := (len(pod) + 1) / 2
			ranked := rankByWins(pod, wins)
			for _, id := range ranked[:keep] {
				next = append(next, byID[id])
			}
		}
		if len(next) >= len(survivors) {
			return TopKResult{}, fmt.Errorf("crowddb: top-k round %d made no progress (%d -> %d survivors)", round, len(survivors), len(next))
		}
		survivors = next
		round++
	}
	// Final full-pairwise round among the finalists.
	plan, _, err := PlanTopKRound(survivors, round, reps, len(survivors))
	if err != nil {
		return TopKResult{}, err
	}
	out, err := e.runRound(plan, policy, round)
	if err != nil {
		return TopKResult{}, err
	}
	result.Makespan += out.Makespan
	result.Rounds = append(result.Rounds, out)
	ranked := rankByWins(survivors, copelandScores(out.Decisions))
	result.TopK = ranked[:k]
	return result, nil
}

// runRound executes one plan with a per-round seed offset so sequential
// rounds see fresh marketplace randomness.
func (e *Executor) runRound(plan Plan, policy PricePolicy, round int) (PhaseOutcome, error) {
	exec := *e
	exec.Config.Seed = e.Config.Seed + uint64(round+1)*0x9e3779b9
	return exec.RunPlan(plan, policy)
}

// copelandScores tallies pairwise wins per item id.
func copelandScores(decisions []Decision) map[string]int {
	wins := make(map[string]int, len(decisions))
	for _, d := range decisions {
		if d.Outcome {
			wins[d.Task.A]++
		} else {
			wins[d.Task.B]++
		}
	}
	return wins
}

// rankByWins orders the pod's ids by descending win count, id ascending
// on ties for determinism.
func rankByWins(pod Dataset, wins map[string]int) []string {
	ids := pod.IDs()
	sort.SliceStable(ids, func(i, j int) bool {
		if wins[ids[i]] != wins[ids[j]] {
			return wins[ids[i]] > wins[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
