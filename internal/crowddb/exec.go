package crowddb

import (
	"fmt"
	"sort"

	"hputune/internal/market"
)

// PricePolicy decides the per-repetition payments of one atomic voting
// task — the hook through which the H-Tuning allocators drive the
// database's crowd spending. The returned slice must have t.Reps entries,
// each >= 1.
type PricePolicy func(t VoteTask) []int

// UniformPrice pays every repetition of every task the same price.
func UniformPrice(price int) PricePolicy {
	return func(t VoteTask) []int {
		prices := make([]int, t.Reps)
		for i := range prices {
			prices[i] = price
		}
		return prices
	}
}

// PriceByDifficulty pays per difficulty bucket, every repetition equally.
func PriceByDifficulty(prices map[Difficulty]int) PricePolicy {
	return func(t VoteTask) []int {
		price, ok := prices[t.Diff]
		if !ok {
			price = 1
		}
		out := make([]int, t.Reps)
		for i := range out {
			out[i] = price
		}
		return out
	}
}

// Decision is the aggregated outcome of one voting task.
type Decision struct {
	Task     VoteTask
	Outcome  bool // majority vote
	YesVotes int  // votes agreeing with the statement (A>B / A>threshold)
	Votes    int
}

// Correct reports whether the majority matched the ground truth.
func (d Decision) Correct() bool { return d.Outcome == d.Task.Truth }

// PhaseOutcome is a completed plan execution.
type PhaseOutcome struct {
	Decisions []Decision
	Makespan  float64 // completion time of the phase's last task
	Paid      int     // budget units spent
	// Records holds every repetition's completion trace in acceptance
	// order — the (price, on-hold) observations a tuner folds back into
	// its price→rate fit.
	Records []market.RepRecord
}

// Accuracy returns the fraction of decisions matching ground truth.
func (o PhaseOutcome) Accuracy() float64 {
	if len(o.Decisions) == 0 {
		return 0
	}
	correct := 0
	for _, d := range o.Decisions {
		if d.Correct() {
			correct++
		}
	}
	return float64(correct) / float64(len(o.Decisions))
}

// Executor runs voting plans on a simulated marketplace.
type Executor struct {
	// Classes maps difficulty buckets to marketplace task classes.
	Classes *ClassSet
	// Config configures each phase's marketplace run; the Seed advances
	// per phase so sequential phases see fresh randomness.
	Config market.Config
}

// RunPlan executes one parallel phase under the price policy and
// aggregates each task's votes by majority (ties resolve to false,
// the conservative "not greater" reading).
func (e *Executor) RunPlan(plan Plan, policy PricePolicy) (PhaseOutcome, error) {
	if e.Classes == nil {
		return PhaseOutcome{}, fmt.Errorf("crowddb: executor has no class set")
	}
	if policy == nil {
		return PhaseOutcome{}, fmt.Errorf("crowddb: nil price policy")
	}
	if len(plan.Tasks) == 0 {
		return PhaseOutcome{}, fmt.Errorf("crowddb: plan %q has no tasks", plan.Label)
	}
	sim, err := market.New(e.Config)
	if err != nil {
		return PhaseOutcome{}, err
	}
	for i, t := range plan.Tasks {
		class, err := e.Classes.Class(t.Diff)
		if err != nil {
			return PhaseOutcome{}, err
		}
		prices := policy(t)
		if len(prices) != t.Reps {
			return PhaseOutcome{}, fmt.Errorf("crowddb: policy returned %d prices for %d repetitions of task %d", len(prices), t.Reps, i)
		}
		spec := market.TaskSpec{
			ID:        fmt.Sprintf("%s/%d", plan.Label, i),
			Class:     class,
			RepPrices: prices,
			Meta:      i, // index back into plan.Tasks
		}
		if err := sim.Post(spec); err != nil {
			return PhaseOutcome{}, err
		}
	}
	results, err := sim.Run()
	if err != nil {
		return PhaseOutcome{}, err
	}
	out := PhaseOutcome{Makespan: sim.Makespan(), Records: sim.AppendRecords(nil)}
	for _, res := range results {
		if len(res.Reps) == 0 {
			continue
		}
		idx, ok := res.Reps[0].Meta.(int)
		if !ok || idx < 0 || idx >= len(plan.Tasks) {
			return PhaseOutcome{}, fmt.Errorf("crowddb: corrupted task meta %v", res.Reps[0].Meta)
		}
		t := plan.Tasks[idx]
		yes := 0
		for _, rep := range res.Reps {
			out.Paid += rep.Price
			// A correct worker casts the true vote; an incorrect one flips it.
			vote := t.Truth == rep.Correct
			if vote {
				yes++
			}
		}
		out.Decisions = append(out.Decisions, Decision{
			Task:     t,
			Outcome:  yes*2 > len(res.Reps),
			YesVotes: yes,
			Votes:    len(res.Reps),
		})
	}
	return out, nil
}

// RunSort executes the pairwise sorting query: plan all pairs, vote, and
// rank items by Copeland score (pairwise wins). Returns the crowd ranking
// (descending) and the phase outcome.
func (e *Executor) RunSort(items Dataset, baseReps int, policy PricePolicy) ([]string, PhaseOutcome, error) {
	plan, err := PlanSortPairs(items, baseReps)
	if err != nil {
		return nil, PhaseOutcome{}, err
	}
	out, err := e.RunPlan(plan, policy)
	if err != nil {
		return nil, PhaseOutcome{}, err
	}
	wins := make(map[string]int, len(items))
	for _, it := range items {
		wins[it.ID] = 0
	}
	for _, d := range out.Decisions {
		if d.Outcome {
			wins[d.Task.A]++
		} else {
			wins[d.Task.B]++
		}
	}
	ranking := items.IDs()
	sort.SliceStable(ranking, func(i, j int) bool {
		if wins[ranking[i]] != wins[ranking[j]] {
			return wins[ranking[i]] > wins[ranking[j]]
		}
		return ranking[i] < ranking[j]
	})
	return ranking, out, nil
}

// RunFilter executes the threshold filter query and returns the ids the
// crowd judged above the threshold.
func (e *Executor) RunFilter(items Dataset, threshold float64, reps int, policy PricePolicy) ([]string, PhaseOutcome, error) {
	plan, err := PlanFilter(items, threshold, reps)
	if err != nil {
		return nil, PhaseOutcome{}, err
	}
	out, err := e.RunPlan(plan, policy)
	if err != nil {
		return nil, PhaseOutcome{}, err
	}
	var keep []string
	for _, d := range out.Decisions {
		if d.Outcome {
			keep = append(keep, d.Task.A)
		}
	}
	sort.Strings(keep)
	return keep, out, nil
}

// RunMax executes the tournament Max query: sequential rounds of pairwise
// votes, each round run as its own marketplace phase (clock accumulates
// across rounds). It returns the winner id, the total wall-clock makespan
// and the per-round outcomes.
func (e *Executor) RunMax(items Dataset, reps int, policy PricePolicy) (string, float64, []PhaseOutcome, error) {
	if len(items) == 0 {
		return "", 0, nil, fmt.Errorf("crowddb: max needs items")
	}
	byID := make(map[string]Item, len(items))
	for _, it := range items {
		byID[it.ID] = it
	}
	survivors := append(Dataset(nil), items...)
	var outs []PhaseOutcome
	clock := 0.0
	round := 0
	for len(survivors) > 1 {
		plan, err := PlanMaxRound(survivors, round, reps)
		if err != nil {
			return "", 0, nil, err
		}
		exec := *e
		exec.Config.Seed = e.Config.Seed + uint64(round+1)*0x9e3779b9
		out, err := exec.RunPlan(plan, policy)
		if err != nil {
			return "", 0, nil, err
		}
		clock += out.Makespan
		outs = append(outs, out)
		var next Dataset
		for _, d := range out.Decisions {
			winner := d.Task.B
			if d.Outcome {
				winner = d.Task.A
			}
			next = append(next, byID[winner])
		}
		if len(survivors)%2 == 1 {
			next = append(next, survivors[len(survivors)-1]) // bye
		}
		survivors = next
		round++
	}
	return survivors[0].ID, clock, outs, nil
}
