package crowddb

import (
	"math"
	"testing"

	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
)

func testDataset() Dataset {
	return Dataset{
		{ID: "a", Value: 100},
		{ID: "b", Value: 60},
		{ID: "c", Value: 58},
		{ID: "d", Value: 20},
	}
}

func testClassSet(t *testing.T) *ClassSet {
	t.Helper()
	cs, err := DefaultClassSet(pricing.Linear{K: 1, B: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestDotImages(t *testing.T) {
	ds, err := DotImages(50, 10, 90, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 50 {
		t.Fatalf("got %d items", len(ds))
	}
	for _, it := range ds {
		if it.Value < 10 || it.Value > 90 {
			t.Errorf("item %s value %v outside [10, 90]", it.ID, it.Value)
		}
	}
	if _, err := DotImages(0, 1, 2, randx.New(1)); err == nil {
		t.Error("zero items accepted")
	}
	if _, err := DotImages(5, 9, 2, randx.New(1)); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := DotImages(5, 1, 2, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestByValueAndIDs(t *testing.T) {
	ds := testDataset()
	sorted := ds.ByValue()
	want := []string{"a", "b", "c", "d"}
	for i, it := range sorted {
		if it.ID != want[i] {
			t.Errorf("position %d: %s, want %s", i, it.ID, want[i])
		}
	}
	// Original order untouched.
	if ds[0].ID != "a" || ds[3].ID != "d" {
		t.Error("ByValue mutated the receiver")
	}
}

func TestKendallTau(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	if d, err := KendallTau(a, a); err != nil || d != 0 {
		t.Errorf("identical rankings: %v, %v", d, err)
	}
	rev := []string{"d", "c", "b", "a"}
	if d, err := KendallTau(a, rev); err != nil || d != 1 {
		t.Errorf("reversed rankings: %v, %v", d, err)
	}
	swap := []string{"b", "a", "c", "d"}
	if d, err := KendallTau(a, swap); err != nil || math.Abs(d-1.0/6) > 1e-12 {
		t.Errorf("one swap: %v, %v (want 1/6)", d, err)
	}
	if _, err := KendallTau(a, a[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := KendallTau(a, []string{"a", "b", "c", "x"}); err == nil {
		t.Error("id mismatch accepted")
	}
	if d, err := KendallTau([]string{"solo"}, []string{"solo"}); err != nil || d != 0 {
		t.Errorf("singleton: %v, %v", d, err)
	}
}

func TestFilterQuality(t *testing.T) {
	p, r := FilterQuality([]string{"a", "b", "x"}, []string{"a", "b", "c"})
	if math.Abs(p-2.0/3) > 1e-12 || math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("precision %v recall %v, want 2/3 each", p, r)
	}
	p, r = FilterQuality(nil, []string{"a"})
	if p != 0 || r != 0 {
		t.Errorf("empty prediction: %v, %v", p, r)
	}
}

func TestPlanSortPairsShape(t *testing.T) {
	ds := testDataset()
	plan, err := PlanSortPairs(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) != 6 { // C(4,2)
		t.Fatalf("got %d pair tasks, want 6", len(plan.Tasks))
	}
	// Close pair (b=60, c=58) must be harder and get more reps than the
	// far pair (a=100, d=20).
	var close, far *VoteTask
	for i := range plan.Tasks {
		tk := &plan.Tasks[i]
		if tk.A == "b" && tk.B == "c" {
			close = tk
		}
		if tk.A == "a" && tk.B == "d" {
			far = tk
		}
	}
	if close == nil || far == nil {
		t.Fatal("expected pairs missing")
	}
	if close.Diff <= far.Diff {
		t.Errorf("close pair difficulty %v not above far pair %v", close.Diff, far.Diff)
	}
	if close.Reps <= far.Reps {
		t.Errorf("close pair reps %d not above far pair %d", close.Reps, far.Reps)
	}
	if !far.Truth {
		t.Error("truth of a>d should be true")
	}
	if plan.TotalReps() < 18 {
		t.Errorf("TotalReps = %d, want >= 18", plan.TotalReps())
	}
}

func TestPlanSortPairsErrors(t *testing.T) {
	if _, err := PlanSortPairs(testDataset()[:1], 3); err == nil {
		t.Error("single item accepted")
	}
	if _, err := PlanSortPairs(testDataset(), 0); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestPlanFilterDifficultyByGap(t *testing.T) {
	ds := Dataset{
		{ID: "far-above", Value: 100},
		{ID: "near", Value: 52},
		{ID: "far-below", Value: 5},
	}
	plan, err := PlanFilter(ds, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) != 3 {
		t.Fatalf("got %d tasks", len(plan.Tasks))
	}
	byID := map[string]VoteTask{}
	for _, tk := range plan.Tasks {
		byID[tk.A] = tk
	}
	if byID["near"].Diff != Hard {
		t.Errorf("near-threshold item difficulty %v, want Hard", byID["near"].Diff)
	}
	if byID["far-above"].Diff != Easy {
		t.Errorf("far item difficulty %v, want Easy", byID["far-above"].Diff)
	}
	if !byID["far-above"].Truth || byID["far-below"].Truth {
		t.Error("filter truths wrong")
	}
}

func TestDefaultClassSetOrdering(t *testing.T) {
	cs := testClassSet(t)
	easy, err := cs.Class(Easy)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := cs.Class(Hard)
	if err != nil {
		t.Fatal(err)
	}
	// Harder ⇒ slower acceptance at the same price, slower processing,
	// lower accuracy — the paper's Fig 5(a)/(b) premise.
	if hard.Accept.Rate(3) >= easy.Accept.Rate(3) {
		t.Error("hard class accepted as fast as easy")
	}
	if hard.ProcRate >= easy.ProcRate {
		t.Error("hard class processed as fast as easy")
	}
	if hard.Accuracy >= easy.Accuracy {
		t.Error("hard class as accurate as easy")
	}
	if _, err := cs.Class(Difficulty(42)); err == nil {
		t.Error("unknown difficulty accepted")
	}
	if _, err := DefaultClassSet(nil, 1); err == nil {
		t.Error("nil base model accepted")
	}
	if _, err := DefaultClassSet(pricing.Linear{K: 1, B: 1}, 0); err == nil {
		t.Error("zero processing rate accepted")
	}
}

func TestRunSortRecoversRanking(t *testing.T) {
	ds := Dataset{
		{ID: "a", Value: 100},
		{ID: "b", Value: 70},
		{ID: "c", Value: 40},
		{ID: "d", Value: 10},
	}
	ex := &Executor{Classes: testClassSet(t), Config: market.Config{Seed: 5}}
	ranking, out, err := ex.RunSort(ds, 5, UniformPrice(3))
	if err != nil {
		t.Fatal(err)
	}
	tau, err := KendallTau(ranking, ds.ByValue().IDs())
	if err != nil {
		t.Fatal(err)
	}
	// Well-separated values and 5 votes/pair: near-perfect ranking.
	if tau > 0.2 {
		t.Errorf("kendall tau %v too high; ranking %v", tau, ranking)
	}
	if out.Makespan <= 0 || out.Paid <= 0 {
		t.Errorf("outcome missing metrics: %+v", out)
	}
	if out.Accuracy() < 0.7 {
		t.Errorf("decision accuracy %v too low", out.Accuracy())
	}
}

func TestRunFilterSeparatesItems(t *testing.T) {
	ds := Dataset{
		{ID: "hi1", Value: 95},
		{ID: "hi2", Value: 90},
		{ID: "lo1", Value: 10},
		{ID: "lo2", Value: 12},
	}
	ex := &Executor{Classes: testClassSet(t), Config: market.Config{Seed: 9}}
	keep, out, err := ex.RunFilter(ds, 50, 5, UniformPrice(3))
	if err != nil {
		t.Fatal(err)
	}
	precision, recall := FilterQuality(keep, []string{"hi1", "hi2"})
	if precision < 0.99 || recall < 0.99 {
		t.Errorf("precision %v recall %v; kept %v", precision, recall, keep)
	}
	if out.Paid != 4*5*3 {
		t.Errorf("paid %d, want 60", out.Paid)
	}
}

func TestRunMaxFindsMaximum(t *testing.T) {
	ds := Dataset{
		{ID: "a", Value: 5},
		{ID: "b", Value: 99},
		{ID: "c", Value: 40},
		{ID: "d", Value: 60},
		{ID: "e", Value: 20},
	}
	ex := &Executor{Classes: testClassSet(t), Config: market.Config{Seed: 13}}
	winner, makespan, rounds, err := ex.RunMax(ds, 5, UniformPrice(3))
	if err != nil {
		t.Fatal(err)
	}
	if winner != "b" {
		t.Errorf("winner %s, want b", winner)
	}
	if makespan <= 0 {
		t.Error("non-positive makespan")
	}
	// 5 items: rounds of 2, 1(+bye→2)... must need at least 2 rounds.
	if len(rounds) < 2 {
		t.Errorf("got %d rounds, want >= 2", len(rounds))
	}
}

func TestRunPlanErrors(t *testing.T) {
	ex := &Executor{Classes: testClassSet(t), Config: market.Config{Seed: 1}}
	if _, err := ex.RunPlan(Plan{Label: "empty"}, UniformPrice(1)); err == nil {
		t.Error("empty plan accepted")
	}
	plan, _ := PlanFilter(testDataset(), 50, 2)
	if _, err := ex.RunPlan(plan, nil); err == nil {
		t.Error("nil policy accepted")
	}
	broken := func(t VoteTask) []int { return []int{1} } // wrong length
	if _, err := ex.RunPlan(plan, broken); err == nil {
		t.Error("mis-sized policy output accepted")
	}
	bare := &Executor{Config: market.Config{Seed: 1}}
	if _, err := bare.RunPlan(plan, UniformPrice(1)); err == nil {
		t.Error("executor without classes accepted")
	}
}

func TestPriceByDifficulty(t *testing.T) {
	policy := PriceByDifficulty(map[Difficulty]int{Easy: 2, Hard: 6})
	tk := VoteTask{Diff: Hard, Reps: 3}
	prices := policy(tk)
	if len(prices) != 3 || prices[0] != 6 {
		t.Errorf("hard prices %v, want [6 6 6]", prices)
	}
	unknown := VoteTask{Diff: Medium, Reps: 2}
	prices = policy(unknown)
	if prices[0] != 1 {
		t.Errorf("unlisted difficulty priced %d, want fallback 1", prices[0])
	}
}

func TestHigherPayHastensSortQuery(t *testing.T) {
	// End-to-end: the same sort job at a higher uniform price must finish
	// faster on average — the premise the whole tuning problem rests on.
	ds := testDataset()
	mean := func(price int) float64 {
		total := 0.0
		const rounds = 30
		for i := 0; i < rounds; i++ {
			ex := &Executor{Classes: testClassSet(t), Config: market.Config{Seed: uint64(1000*price + i)}}
			_, out, err := ex.RunSort(ds, 3, UniformPrice(price))
			if err != nil {
				t.Fatal(err)
			}
			total += out.Makespan
		}
		return total / rounds
	}
	if cheap, rich := mean(1), mean(9); rich >= cheap {
		t.Errorf("price 9 makespan %v not below price 1 makespan %v", rich, cheap)
	}
}

func TestDifficultyString(t *testing.T) {
	if Easy.String() != "easy" || Medium.String() != "medium" || Hard.String() != "hard" {
		t.Error("difficulty names wrong")
	}
	if Difficulty(9).String() == "" {
		t.Error("unknown difficulty has empty name")
	}
}
