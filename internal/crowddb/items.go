// Package crowddb is the crowd-powered database substrate motivating the
// paper's tuning problem: query operators (sort, filter, max) that a
// planner decomposes into atomic pairwise/yes-no voting tasks executed by
// crowd workers on a marketplace (package market), with majority-vote
// aggregation.
//
// It reproduces the applications behind both motivation examples of the
// paper (pairwise sorting votes and threshold filtering votes) and the
// image-filter experiment of Sec 5.2 (estimate the number of dots in an
// image, filter by a threshold), including the paper's difficulty knob:
// harder tasks are accepted more slowly and processed more slowly.
package crowddb

import (
	"fmt"
	"sort"

	"hputune/internal/randx"
)

// Item is a database item with a latent numeric value the crowd estimates
// (e.g. the true number of dots in an image) and an optional latent
// category (e.g. the depicted object) used by the group-by operator.
type Item struct {
	ID    string
	Value float64
	Class string // latent category; empty outside group-by workloads
}

// Dataset is an ordered collection of items.
type Dataset []Item

// DotImages synthesizes n "images" with uniformly random dot counts in
// [lo, hi] — the workload of the paper's AMT experiment.
func DotImages(n int, lo, hi int, r *randx.Rand) (Dataset, error) {
	if n < 1 {
		return nil, fmt.Errorf("crowddb: need at least one item, got %d", n)
	}
	if lo > hi {
		return nil, fmt.Errorf("crowddb: invalid dot range [%d, %d]", lo, hi)
	}
	if r == nil {
		return nil, fmt.Errorf("crowddb: nil random source")
	}
	ds := make(Dataset, n)
	for i := range ds {
		ds[i] = Item{
			ID:    fmt.Sprintf("img-%03d", i),
			Value: float64(lo + r.Intn(hi-lo+1)),
		}
	}
	return ds, nil
}

// ByValue returns the dataset's items sorted by descending latent value —
// the ground-truth ranking used by quality metrics.
func (d Dataset) ByValue() Dataset {
	out := append(Dataset(nil), d...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out
}

// IDs returns the item identifiers in dataset order.
func (d Dataset) IDs() []string {
	ids := make([]string, len(d))
	for i, it := range d {
		ids[i] = it.ID
	}
	return ids
}

// KendallTau returns the normalized Kendall tau distance between two
// rankings of the same id set: 0 for identical order, 1 for reversed.
func KendallTau(a, b []string) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("crowddb: rankings of different lengths %d and %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}
	pos := make(map[string]int, n)
	for i, id := range b {
		pos[id] = i
	}
	for _, id := range a {
		if _, ok := pos[id]; !ok {
			return 0, fmt.Errorf("crowddb: id %q missing from second ranking", id)
		}
	}
	discordant := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pos[a[i]] > pos[a[j]] {
				discordant++
			}
		}
	}
	return float64(discordant) / float64(n*(n-1)/2), nil
}

// FilterQuality reports precision and recall of a predicted id set against
// the ground-truth set.
func FilterQuality(predicted, truth []string) (precision, recall float64) {
	truthSet := make(map[string]bool, len(truth))
	for _, id := range truth {
		truthSet[id] = true
	}
	hit := 0
	for _, id := range predicted {
		if truthSet[id] {
			hit++
		}
	}
	if len(predicted) > 0 {
		precision = float64(hit) / float64(len(predicted))
	}
	if len(truth) > 0 {
		recall = float64(hit) / float64(len(truth))
	}
	return precision, recall
}

// CategorizedItems synthesizes n items spread over the given categories
// round-robin, with uniformly random values in [lo, hi] — the workload of
// the group-by operator (items of one category share a latent type the
// crowd can recognize).
func CategorizedItems(n int, classes []string, lo, hi int, r *randx.Rand) (Dataset, error) {
	if n < 1 {
		return nil, fmt.Errorf("crowddb: need at least one item, got %d", n)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("crowddb: need at least one category")
	}
	if lo > hi {
		return nil, fmt.Errorf("crowddb: invalid value range [%d, %d]", lo, hi)
	}
	if r == nil {
		return nil, fmt.Errorf("crowddb: nil random source")
	}
	ds := make(Dataset, n)
	for i := range ds {
		ds[i] = Item{
			ID:    fmt.Sprintf("item-%03d", i),
			Value: float64(lo + r.Intn(hi-lo+1)),
			Class: classes[i%len(classes)],
		}
	}
	return ds, nil
}

// RandIndex returns the Rand index of a predicted clustering against the
// items' latent classes: the fraction of item pairs on which the
// clustering and the ground truth agree (both together or both apart).
// 1.0 is a perfect recovery.
func RandIndex(clusters [][]string, items Dataset) (float64, error) {
	truth := make(map[string]string, len(items))
	for _, it := range items {
		truth[it.ID] = it.Class
	}
	cluster := make(map[string]int)
	for ci, members := range clusters {
		for _, id := range members {
			if _, ok := truth[id]; !ok {
				return 0, fmt.Errorf("crowddb: clustered id %q not in dataset", id)
			}
			if _, dup := cluster[id]; dup {
				return 0, fmt.Errorf("crowddb: id %q appears in two clusters", id)
			}
			cluster[id] = ci
		}
	}
	if len(cluster) != len(items) {
		return 0, fmt.Errorf("crowddb: clustering covers %d of %d items", len(cluster), len(items))
	}
	if len(items) < 2 {
		return 1, nil
	}
	agree, pairs := 0, 0
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			pairs++
			sameTruth := items[i].Class == items[j].Class
			samePred := cluster[items[i].ID] == cluster[items[j].ID]
			if sameTruth == samePred {
				agree++
			}
		}
	}
	return float64(agree) / float64(pairs), nil
}
