package crowddb

import (
	"testing"

	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
)

// perfectExecutor returns an executor whose classes always answer
// correctly, so operator logic can be tested deterministically.
func perfectExecutor(seed uint64) (*Executor, error) {
	cs, err := DefaultClassSet(pricing.Linear{K: 1, B: 1}, 2)
	if err != nil {
		return nil, err
	}
	for _, d := range []Difficulty{Easy, Medium, Hard} {
		c, err := cs.Class(d)
		if err != nil {
			return nil, err
		}
		c.Accuracy = 1
	}
	return &Executor{Classes: cs, Config: market.Config{Seed: seed}}, nil
}

func noisyExecutor(seed uint64) (*Executor, error) {
	cs, err := DefaultClassSet(pricing.Linear{K: 1, B: 1}, 2)
	if err != nil {
		return nil, err
	}
	return &Executor{Classes: cs, Config: market.Config{Seed: seed}}, nil
}

func categorized(t *testing.T, n int, classes []string, seed uint64) Dataset {
	t.Helper()
	items, err := CategorizedItems(n, classes, 10, 100, randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return items
}

func TestCategorizedItemsValidation(t *testing.T) {
	r := randx.New(1)
	if _, err := CategorizedItems(0, []string{"a"}, 0, 1, r); err == nil {
		t.Error("zero items accepted")
	}
	if _, err := CategorizedItems(3, nil, 0, 1, r); err == nil {
		t.Error("no categories accepted")
	}
	if _, err := CategorizedItems(3, []string{"a"}, 2, 1, r); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := CategorizedItems(3, []string{"a"}, 0, 1, nil); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestCategorizedItemsRoundRobin(t *testing.T) {
	items := categorized(t, 6, []string{"cat", "dog"}, 2)
	for i, it := range items {
		want := "cat"
		if i%2 == 1 {
			want = "dog"
		}
		if it.Class != want {
			t.Errorf("item %d class %q, want %q", i, it.Class, want)
		}
	}
}

func TestRandIndexPerfectAndWorst(t *testing.T) {
	items := Dataset{
		{ID: "a", Class: "x"}, {ID: "b", Class: "x"},
		{ID: "c", Class: "y"}, {ID: "d", Class: "y"},
	}
	perfect := [][]string{{"a", "b"}, {"c", "d"}}
	ri, err := RandIndex(perfect, items)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("perfect clustering Rand index %v, want 1", ri)
	}
	crossed := [][]string{{"a", "c"}, {"b", "d"}}
	ri, err = RandIndex(crossed, items)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1.0/3 {
		t.Errorf("crossed clustering Rand index %v, want 1/3", ri)
	}
}

func TestRandIndexValidation(t *testing.T) {
	items := Dataset{{ID: "a", Class: "x"}, {ID: "b", Class: "y"}}
	if _, err := RandIndex([][]string{{"a"}}, items); err == nil {
		t.Error("partial clustering accepted")
	}
	if _, err := RandIndex([][]string{{"a"}, {"a", "b"}}, items); err == nil {
		t.Error("duplicated id accepted")
	}
	if _, err := RandIndex([][]string{{"a", "b", "z"}}, items); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestPlanGroupByPhaseShape(t *testing.T) {
	items := categorized(t, 7, []string{"cat", "dog", "owl"}, 3)
	plan, err := PlanGroupByPhase(items[1:], items[:1], 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) != 6 { // 6 unassigned × 1 representative
		t.Fatalf("got %d tasks, want 6", len(plan.Tasks))
	}
	for _, task := range plan.Tasks {
		if task.Kind != VoteSame {
			t.Errorf("task kind %v, want VoteSame", task.Kind)
		}
		if task.Reps != 3 {
			t.Errorf("task reps %d, want 3", task.Reps)
		}
	}
}

func TestPlanGroupByPhaseValidation(t *testing.T) {
	items := categorized(t, 4, []string{"a"}, 4)
	if _, err := PlanGroupByPhase(nil, items[:1], 0, 1); err == nil {
		t.Error("no unassigned accepted")
	}
	if _, err := PlanGroupByPhase(items[1:], nil, 0, 1); err == nil {
		t.Error("no representatives accepted")
	}
	if _, err := PlanGroupByPhase(items[1:], items[:1], 0, 0); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestRunGroupByPerfectWorkersRecoverClasses(t *testing.T) {
	e, err := perfectExecutor(11)
	if err != nil {
		t.Fatal(err)
	}
	items := categorized(t, 12, []string{"cat", "dog", "owl"}, 5)
	res, err := e.RunGroupBy(items, 3, UniformPrice(2))
	if err != nil {
		t.Fatal(err)
	}
	ri, err := RandIndex(res.Clusters, items)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("perfect workers Rand index %v, want 1 (clusters %v)", ri, res.Clusters)
	}
	if len(res.Clusters) != 3 {
		t.Errorf("found %d clusters, want 3", len(res.Clusters))
	}
	if res.Makespan <= 0 {
		t.Error("no makespan recorded")
	}
	if res.Paid() <= 0 {
		t.Error("nothing paid")
	}
}

func TestRunGroupByNoisyWorkersStillCover(t *testing.T) {
	e, err := noisyExecutor(13)
	if err != nil {
		t.Fatal(err)
	}
	items := categorized(t, 15, []string{"cat", "dog"}, 7)
	res, err := e.RunGroupBy(items, 5, UniformPrice(2))
	if err != nil {
		t.Fatal(err)
	}
	// Every item must be clustered exactly once even when votes err.
	seen := make(map[string]bool)
	for _, cl := range res.Clusters {
		for _, id := range cl {
			if seen[id] {
				t.Fatalf("id %q clustered twice", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != len(items) {
		t.Errorf("clustered %d of %d items", len(seen), len(items))
	}
	// Noisy majority voting should still be far better than random.
	ri, err := RandIndex(res.Clusters, items)
	if err != nil {
		t.Fatal(err)
	}
	if ri < 0.6 {
		t.Errorf("noisy Rand index %v below 0.6", ri)
	}
}

func TestRunGroupByEdgeCases(t *testing.T) {
	e, err := perfectExecutor(17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunGroupBy(nil, 3, UniformPrice(1)); err == nil {
		t.Error("empty dataset accepted")
	}
	one := Dataset{{ID: "solo", Class: "x"}}
	res, err := e.RunGroupBy(one, 3, UniformPrice(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || len(res.Clusters[0]) != 1 || res.Clusters[0][0] != "solo" {
		t.Errorf("single item clustering %v", res.Clusters)
	}
}

func TestSameDifficultyBuckets(t *testing.T) {
	// Same class, near values: easy. Same class, distant values: hard.
	a := Item{ID: "a", Value: 50, Class: "x"}
	near := Item{ID: "b", Value: 51, Class: "x"}
	far := Item{ID: "c", Value: 99, Class: "x"}
	otherNear := Item{ID: "d", Value: 51, Class: "y"}
	otherFar := Item{ID: "e", Value: 99, Class: "y"}
	if d := sameDifficulty(a, near); d != Easy {
		t.Errorf("same/near = %v, want easy", d)
	}
	if d := sameDifficulty(a, far); d != Hard {
		t.Errorf("same/far = %v, want hard", d)
	}
	if d := sameDifficulty(a, otherNear); d != Hard {
		t.Errorf("diff/near = %v, want hard", d)
	}
	if d := sameDifficulty(a, otherFar); d != Easy {
		t.Errorf("diff/far = %v, want easy", d)
	}
}

func TestPlanTopKRoundPods(t *testing.T) {
	items := categorized(t, 10, []string{"a"}, 19)
	plan, pods, err := PlanTopKRound(items, 0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pods) != 3 { // 4 + 4 + 2
		t.Fatalf("got %d pods, want 3", len(pods))
	}
	// Pairwise tasks: C(4,2)+C(4,2)+C(2,2) = 6+6+1.
	if len(plan.Tasks) != 13 {
		t.Errorf("got %d tasks, want 13", len(plan.Tasks))
	}
}

func TestPlanTopKRoundValidation(t *testing.T) {
	items := categorized(t, 4, []string{"a"}, 23)
	if _, _, err := PlanTopKRound(items[:1], 0, 1, 4); err == nil {
		t.Error("single survivor accepted")
	}
	if _, _, err := PlanTopKRound(items, 0, 0, 4); err == nil {
		t.Error("zero reps accepted")
	}
	if _, _, err := PlanTopKRound(items, 0, 1, 1); err == nil {
		t.Error("pod size 1 accepted")
	}
}

func TestRunTopKPerfectWorkersFindTruth(t *testing.T) {
	e, err := perfectExecutor(29)
	if err != nil {
		t.Fatal(err)
	}
	items, err := DotImages(20, 10, 200, randx.New(31))
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	res, err := e.RunTopK(items, k, 3, UniformPrice(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != k {
		t.Fatalf("got %d winners, want %d", len(res.TopK), k)
	}
	want := items.ByValue().IDs()[:k]
	got := make(map[string]bool, k)
	for _, id := range res.TopK {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("true top-%d item %s missing from %v", k, id, res.TopK)
		}
	}
	if len(res.Rounds) < 2 {
		t.Errorf("expected multiple tournament rounds, got %d", len(res.Rounds))
	}
	if res.Makespan <= 0 || res.Paid() <= 0 {
		t.Errorf("missing makespan/cost: %v / %d", res.Makespan, res.Paid())
	}
}

func TestRunTopKDegenerateCases(t *testing.T) {
	e, err := perfectExecutor(37)
	if err != nil {
		t.Fatal(err)
	}
	items, err := DotImages(5, 10, 100, randx.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunTopK(nil, 2, 3, UniformPrice(1)); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := e.RunTopK(items, 0, 3, UniformPrice(1)); err == nil {
		t.Error("k=0 accepted")
	}
	// k >= n returns everything, best first, without crowd work.
	res, err := e.RunTopK(items, 5, 3, UniformPrice(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 5 || res.Paid() != 0 {
		t.Errorf("k=n shortcut wrong: %v paid %d", res.TopK, res.Paid())
	}
}

func TestRunTopKNoisyStillReasonable(t *testing.T) {
	e, err := noisyExecutor(43)
	if err != nil {
		t.Fatal(err)
	}
	items, err := DotImages(16, 10, 200, randx.New(47))
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	res, err := e.RunTopK(items, k, 5, UniformPrice(3))
	if err != nil {
		t.Fatal(err)
	}
	// At least half of the noisy top-k should be truly top-k.
	truth := make(map[string]bool, k)
	for _, id := range items.ByValue().IDs()[:k] {
		truth[id] = true
	}
	hits := 0
	for _, id := range res.TopK {
		if truth[id] {
			hits++
		}
	}
	if hits < k/2 {
		t.Errorf("noisy top-%d recovered only %d true members: %v", k, hits, res.TopK)
	}
}
