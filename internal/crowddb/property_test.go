package crowddb

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"hputune/internal/randx"
)

// Property tests: the crowd operators against brute-force references.
// With perfect (accuracy-1) workers every vote equals its ground truth,
// so the tournament and discovery outcomes must equal a reference that
// replays the same elimination logic directly on the item values — any
// divergence is an operator bug, not noise.

// refRankPod is the brute-force pod ranking: pairwise "wins" from the
// ground-truth comparisons (A wins when its value is strictly greater,
// matching the VoteCompare truth convention), descending wins, id
// ascending on ties.
func refRankPod(pod Dataset) []string {
	wins := make(map[string]int, len(pod))
	for i := 0; i < len(pod); i++ {
		for j := i + 1; j < len(pod); j++ {
			if pod[i].Value > pod[j].Value {
				wins[pod[i].ID]++
			} else {
				wins[pod[j].ID]++
			}
		}
	}
	ids := pod.IDs()
	sort.SliceStable(ids, func(a, b int) bool {
		if wins[ids[a]] != wins[ids[b]] {
			return wins[ids[a]] > wins[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}

// refTopK replays the tournament with truthful votes: pods of 4, top
// half advances, until at most max(2k, 4) survivors, then one full
// pairwise round ranks the finalists.
func refTopK(items Dataset, k int) []string {
	if k >= len(items) {
		return items.ByValue().IDs()
	}
	const podSize = 4
	byID := make(map[string]Item, len(items))
	for _, it := range items {
		byID[it.ID] = it
	}
	survivors := append(Dataset(nil), items...)
	cut := 2 * k
	if cut < podSize {
		cut = podSize
	}
	for len(survivors) > cut {
		var next Dataset
		for start := 0; start < len(survivors); start += podSize {
			end := start + podSize
			if end > len(survivors) {
				end = len(survivors)
			}
			pod := survivors[start:end]
			keep := (len(pod) + 1) / 2
			for _, id := range refRankPod(pod)[:keep] {
				next = append(next, byID[id])
			}
		}
		survivors = next
	}
	return refRankPod(survivors)[:k]
}

// refGroupBy replays sequential discovery with truthful votes: per
// phase, each unassigned item joins the pre-existing representative of
// its own class; the first item matching none founds the next cluster
// and the rest wait for the following phase.
func refGroupBy(items Dataset) [][]string {
	reps := Dataset{items[0]}
	clusters := [][]string{{items[0].ID}}
	unassigned := append(Dataset(nil), items[1:]...)
	for len(unassigned) > 0 {
		phaseReps := append(Dataset(nil), reps...)
		var leftover Dataset
		founded := false
		for _, it := range unassigned {
			ci := -1
			for i, r := range phaseReps {
				if it.Class == r.Class {
					ci = i
					break
				}
			}
			switch {
			case ci >= 0:
				clusters[ci] = append(clusters[ci], it.ID)
			case !founded:
				clusters = append(clusters, []string{it.ID})
				reps = append(reps, it)
				founded = true
			default:
				leftover = append(leftover, it)
			}
		}
		unassigned = leftover
	}
	return clusters
}

func TestTopKMatchesReferenceTournament(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, n := range []int{5, 8, 11, 16, 23} {
			items, err := DotImages(n, 10, 100, randx.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, n / 2} {
				exec, err := perfectExecutor(seed * 101)
				if err != nil {
					t.Fatal(err)
				}
				res, err := exec.RunTopK(items, k, 3, UniformPrice(2))
				if err != nil {
					t.Fatalf("seed %d n %d k %d: %v", seed, n, k, err)
				}
				want := refTopK(items, k)
				if !reflect.DeepEqual(res.TopK, want) {
					t.Errorf("seed %d n %d k %d: top-k %v, reference %v", seed, n, k, res.TopK, want)
				}
			}
		}
	}
}

func TestGroupByMatchesReferenceDiscovery(t *testing.T) {
	classSets := [][]string{
		{"bird", "boat"},
		{"bird", "boat", "bike"},
		{"a", "b", "c", "d", "e"},
	}
	for seed := uint64(1); seed <= 8; seed++ {
		for _, classes := range classSets {
			for _, n := range []int{4, 9, 14} {
				items, err := CategorizedItems(n, classes, 10, 100, randx.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				exec, err := perfectExecutor(seed * 103)
				if err != nil {
					t.Fatal(err)
				}
				res, err := exec.RunGroupBy(items, 3, UniformPrice(2))
				if err != nil {
					t.Fatalf("seed %d n %d: %v", seed, n, err)
				}
				want := refGroupBy(items)
				if !reflect.DeepEqual(res.Clusters, want) {
					t.Errorf("seed %d classes %v n %d: clusters %v, reference %v", seed, classes, n, res.Clusters, want)
				}
				// Phase count is bounded by latent categories + 1.
				if len(res.Phases) > len(classes)+1 {
					t.Errorf("seed %d n %d: %d phases for %d categories", seed, n, len(res.Phases), len(classes))
				}
			}
		}
	}
}

// TestPaidMatchesPolicyPricesExactly pins budget accounting: in the
// default marketplace mode every posted repetition completes, so a
// query's Paid must equal the sum of the policy's prices over every
// repetition of every task — and the per-repetition records must carry
// exactly those prices.
func TestPaidMatchesPolicyPricesExactly(t *testing.T) {
	prices := map[Difficulty]int{Easy: 2, Medium: 3, Hard: 5}
	policy := PriceByDifficulty(prices)
	checkPhase := func(t *testing.T, label string, out PhaseOutcome) {
		t.Helper()
		wantPaid := 0
		for _, d := range out.Decisions {
			if d.Votes != d.Task.Reps {
				t.Errorf("%s: task got %d votes, posted %d repetitions", label, d.Votes, d.Task.Reps)
			}
			wantPaid += prices[d.Task.Diff] * d.Votes
		}
		if out.Paid != wantPaid {
			t.Errorf("%s: paid %d, policy prices sum to %d", label, out.Paid, wantPaid)
		}
		recPaid := 0
		for _, rec := range out.Records {
			recPaid += rec.Price
		}
		if recPaid != out.Paid {
			t.Errorf("%s: records carry %d units, phase paid %d", label, recPaid, out.Paid)
		}
	}

	for seed := uint64(1); seed <= 4; seed++ {
		items, err := DotImages(13, 10, 100, randx.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		exec, err := noisyExecutor(seed)
		if err != nil {
			t.Fatal(err)
		}
		topk, err := exec.RunTopK(items, 3, 3, policy)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, out := range topk.Rounds {
			checkPhase(t, fmt.Sprintf("seed %d top-k round %d", seed, i), out)
			total += out.Paid
		}
		if topk.Paid() != total {
			t.Errorf("seed %d: Paid() %d, rounds sum %d", seed, topk.Paid(), total)
		}

		cats, err := CategorizedItems(10, []string{"x", "y", "z"}, 10, 100, randx.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		gb, err := exec.RunGroupBy(cats, 3, policy)
		if err != nil {
			t.Fatal(err)
		}
		total = 0
		for i, out := range gb.Phases {
			checkPhase(t, fmt.Sprintf("seed %d group-by phase %d", seed, i), out)
			total += out.Paid
		}
		if gb.Paid() != total {
			t.Errorf("seed %d: Paid() %d, phases sum %d", seed, gb.Paid(), total)
		}
	}

	// A single explicit plan closes the loop against the plan itself:
	// Paid == Σ_tasks Σ policy(task), computed before execution.
	items, err := DotImages(12, 10, 100, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFilter(items, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, task := range plan.Tasks {
		for _, p := range policy(task) {
			want += p
		}
	}
	exec, err := noisyExecutor(7)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.RunPlan(plan, policy)
	if err != nil {
		t.Fatal(err)
	}
	if out.Paid != want {
		t.Errorf("filter plan paid %d, policy sums to %d", out.Paid, want)
	}
}

// TestAccuracyMonotoneInRepetitions checks the redundancy dividend: on
// fixed seeds, mean decision accuracy (averaged across seeds) never
// decreases as the per-task repetition count rises through odd values —
// majority voting with above-chance workers can only gain from more
// votes.
func TestAccuracyMonotoneInRepetitions(t *testing.T) {
	const seeds = 16
	repsLevels := []int{1, 3, 5, 7}
	means := make([]float64, len(repsLevels))
	for ri, reps := range repsLevels {
		sum := 0.0
		for seed := uint64(1); seed <= seeds; seed++ {
			items, err := DotImages(20, 10, 100, randx.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			plan, err := PlanFilter(items, 50, reps)
			if err != nil {
				t.Fatal(err)
			}
			exec, err := noisyExecutor(seed * 7)
			if err != nil {
				t.Fatal(err)
			}
			out, err := exec.RunPlan(plan, UniformPrice(2))
			if err != nil {
				t.Fatal(err)
			}
			sum += out.Accuracy()
		}
		means[ri] = sum / seeds
	}
	for i := 1; i < len(means); i++ {
		if means[i] < means[i-1] {
			t.Errorf("mean accuracy dropped from %.4f (reps %d) to %.4f (reps %d): %v",
				means[i-1], repsLevels[i-1], means[i], repsLevels[i], means)
		}
	}
	if means[len(means)-1] <= means[0] {
		t.Errorf("no redundancy dividend: accuracy %v flat or falling across reps %v", means, repsLevels)
	}
}
