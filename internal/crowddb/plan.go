package crowddb

import (
	"fmt"
	"math"

	"hputune/internal/market"
	"hputune/internal/pricing"
)

// VoteKind is the semantic of one atomic voting task.
type VoteKind int

const (
	// VoteCompare asks "is A greater than B?" (pairwise sorting vote).
	VoteCompare VoteKind = iota
	// VoteThreshold asks "is A above the threshold?" (filtering vote).
	VoteThreshold
	// VoteSame asks "are A and B of the same type?" (group-by vote).
	VoteSame
)

// Difficulty buckets atomic tasks the way the paper's Sec 5.2 experiment
// does (4, 6 or 8 internal votes): harder tasks are accepted more slowly
// at equal price and take longer to process.
type Difficulty int

const (
	Easy Difficulty = iota
	Medium
	Hard
)

// String implements fmt.Stringer.
func (d Difficulty) String() string {
	switch d {
	case Easy:
		return "easy"
	case Medium:
		return "medium"
	case Hard:
		return "hard"
	}
	return fmt.Sprintf("Difficulty(%d)", int(d))
}

// VoteTask is one atomic voting task the planner emits: Reps workers will
// each cast one vote; the majority decides.
type VoteTask struct {
	Kind  VoteKind
	A, B  string // item ids; B empty for VoteThreshold
	Truth bool   // ground truth of the vote (A > B, or A > threshold)
	Diff  Difficulty
	Reps  int
}

// Plan is one parallel phase of atomic voting tasks. Phases of a
// multi-phase job (e.g. tournament rounds) run sequentially.
type Plan struct {
	Label string
	Tasks []VoteTask
}

// ClassSet carries the marketplace behaviour of each difficulty bucket.
// Rates follow the paper's Fig 5 observations: more internal votes ⇒
// lower acceptance rate and lower processing rate.
type ClassSet struct {
	classes map[Difficulty]*market.TaskClass
}

// DefaultClassSet builds difficulty classes over a base acceptance model,
// damping acceptance by 1.0/0.8/0.6 and processing by 1.0/0.7/0.5 for
// easy/medium/hard, with accuracies 0.95/0.85/0.75.
func DefaultClassSet(base pricing.RateModel, baseProcRate float64) (*ClassSet, error) {
	if base == nil {
		return nil, fmt.Errorf("crowddb: nil base rate model")
	}
	if !(baseProcRate > 0) {
		return nil, fmt.Errorf("crowddb: non-positive base processing rate %v", baseProcRate)
	}
	mk := func(d Difficulty, damp, procDamp, acc float64) *market.TaskClass {
		return &market.TaskClass{
			Name:     "vote-" + d.String(),
			Accept:   pricing.Scaled{Base: base, Factor: damp},
			ProcRate: baseProcRate * procDamp,
			Accuracy: acc,
		}
	}
	return &ClassSet{classes: map[Difficulty]*market.TaskClass{
		Easy:   mk(Easy, 1.0, 1.0, 0.95),
		Medium: mk(Medium, 0.8, 0.7, 0.85),
		Hard:   mk(Hard, 0.6, 0.5, 0.75),
	}}, nil
}

// Class returns the marketplace class of a difficulty bucket.
func (cs *ClassSet) Class(d Difficulty) (*market.TaskClass, error) {
	c, ok := cs.classes[d]
	if !ok {
		return nil, fmt.Errorf("crowddb: no class for difficulty %v", d)
	}
	return c, nil
}

// compareDifficulty buckets a pairwise comparison by relative value gap:
// close values are hard to compare, distant ones easy — the cognitive-load
// model behind the paper's difficulty knob.
func compareDifficulty(a, b Item) Difficulty {
	span := math.Abs(a.Value-b.Value) / (1 + math.Max(math.Abs(a.Value), math.Abs(b.Value)))
	switch {
	case span >= 0.25:
		return Easy
	case span >= 0.08:
		return Medium
	default:
		return Hard
	}
}

// PlanSortPairs emits one comparison task per unordered item pair (the
// paper's pairwise "sorting vote" decomposition), assigning repetitions by
// difficulty: baseReps for easy, +2 for medium, +4 for hard — the
// "next votes" idea of giving contentious pairs more votes.
func PlanSortPairs(items Dataset, baseReps int) (Plan, error) {
	if len(items) < 2 {
		return Plan{}, fmt.Errorf("crowddb: sorting needs at least 2 items, got %d", len(items))
	}
	if baseReps < 1 {
		return Plan{}, fmt.Errorf("crowddb: baseReps must be >= 1, got %d", baseReps)
	}
	var plan Plan
	plan.Label = "sort-pairs"
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			d := compareDifficulty(items[i], items[j])
			reps := baseReps
			switch d {
			case Medium:
				reps += 2
			case Hard:
				reps += 4
			}
			plan.Tasks = append(plan.Tasks, VoteTask{
				Kind:  VoteCompare,
				A:     items[i].ID,
				B:     items[j].ID,
				Truth: items[i].Value > items[j].Value,
				Diff:  d,
				Reps:  reps,
			})
		}
	}
	return plan, nil
}

// PlanFilter emits one threshold vote per item (the paper's filtering /
// image-dot experiment): "does this item exceed threshold?".
func PlanFilter(items Dataset, threshold float64, reps int) (Plan, error) {
	if len(items) == 0 {
		return Plan{}, fmt.Errorf("crowddb: filtering needs items")
	}
	if reps < 1 {
		return Plan{}, fmt.Errorf("crowddb: reps must be >= 1, got %d", reps)
	}
	var plan Plan
	plan.Label = "filter"
	for _, it := range items {
		// Items near the threshold are hard to judge.
		gap := math.Abs(it.Value-threshold) / (1 + math.Abs(threshold))
		d := Hard
		if gap >= 0.25 {
			d = Easy
		} else if gap >= 0.08 {
			d = Medium
		}
		plan.Tasks = append(plan.Tasks, VoteTask{
			Kind:  VoteThreshold,
			A:     it.ID,
			Truth: it.Value > threshold,
			Diff:  d,
			Reps:  reps,
		})
	}
	return plan, nil
}

// PlanMaxRound emits one round of a single-elimination tournament for the
// crowd Max operator: the given survivors are compared pairwise; an odd
// survivor gets a bye. The executor builds the next round from the actual
// majority winners (Executor.RunMax).
func PlanMaxRound(survivors Dataset, round, reps int) (Plan, error) {
	if len(survivors) < 2 {
		return Plan{}, fmt.Errorf("crowddb: a max round needs at least 2 survivors, got %d", len(survivors))
	}
	if reps < 1 {
		return Plan{}, fmt.Errorf("crowddb: reps must be >= 1, got %d", reps)
	}
	var plan Plan
	plan.Label = fmt.Sprintf("max-round-%d", round)
	for i := 0; i+1 < len(survivors); i += 2 {
		a, b := survivors[i], survivors[i+1]
		plan.Tasks = append(plan.Tasks, VoteTask{
			Kind:  VoteCompare,
			A:     a.ID,
			B:     b.ID,
			Truth: a.Value > b.Value,
			Diff:  compareDifficulty(a, b),
			Reps:  reps,
		})
	}
	return plan, nil
}

// TotalReps returns the number of worker votes the plan requests.
func (p Plan) TotalReps() int {
	total := 0
	for _, t := range p.Tasks {
		total += t.Reps
	}
	return total
}
