package crowddb

import (
	"fmt"
	"math"
)

// sameDifficulty buckets a "same type?" vote: the judgment is hard when
// appearance disagrees with the truth — items of one category whose
// values differ widely, or items of different categories whose values
// nearly coincide.
func sameDifficulty(a, b Item) Difficulty {
	gap := math.Abs(a.Value-b.Value) / (1 + math.Max(math.Abs(a.Value), math.Abs(b.Value)))
	same := a.Class == b.Class
	switch {
	case same && gap < 0.08, !same && gap >= 0.25:
		return Easy
	case same && gap < 0.25, !same && gap >= 0.08:
		return Medium
	default:
		return Hard
	}
}

// PlanGroupByPhase emits one parallel phase of the crowd group-by
// operator (Davidson et al., reference [10] of the paper): every
// unassigned item is compared against every current cluster
// representative with a "same type?" vote.
func PlanGroupByPhase(unassigned, representatives Dataset, phase, reps int) (Plan, error) {
	if len(unassigned) == 0 {
		return Plan{}, fmt.Errorf("crowddb: group-by phase with no unassigned items")
	}
	if len(representatives) == 0 {
		return Plan{}, fmt.Errorf("crowddb: group-by phase with no representatives")
	}
	if reps < 1 {
		return Plan{}, fmt.Errorf("crowddb: reps must be >= 1, got %d", reps)
	}
	plan := Plan{Label: fmt.Sprintf("group-by-phase-%d", phase)}
	for _, it := range unassigned {
		for _, rep := range representatives {
			plan.Tasks = append(plan.Tasks, VoteTask{
				Kind:  VoteSame,
				A:     it.ID,
				B:     rep.ID,
				Truth: it.Class == rep.Class,
				Diff:  sameDifficulty(it, rep),
				Reps:  reps,
			})
		}
	}
	return plan, nil
}

// GroupByResult is the outcome of a crowd group-by query.
type GroupByResult struct {
	// Clusters holds the member ids of each discovered group; the first
	// id of each cluster is its representative.
	Clusters [][]string
	// Makespan is the wall clock across all sequential phases.
	Makespan float64
	// Phases holds the per-phase outcomes.
	Phases []PhaseOutcome
}

// Paid returns the total budget units spent across phases.
func (g GroupByResult) Paid() int {
	total := 0
	for _, p := range g.Phases {
		total += p.Paid
	}
	return total
}

// RunGroupBy executes the crowd group-by: sequential phases compare
// unassigned items against cluster representatives ("same type?" votes);
// an item joins the representative with the strongest majority-yes, and
// per phase one item matching no representative founds a new cluster —
// the sequential-discovery structure of [10], with each phase a parallel
// marketplace round. Phase count is therefore at most the number of
// latent categories plus one.
func (e *Executor) RunGroupBy(items Dataset, reps int, policy PricePolicy) (GroupByResult, error) {
	if len(items) == 0 {
		return GroupByResult{}, fmt.Errorf("crowddb: group-by needs items")
	}
	if len(items) == 1 {
		return GroupByResult{Clusters: [][]string{{items[0].ID}}}, nil
	}
	byID := make(map[string]Item, len(items))
	for _, it := range items {
		byID[it.ID] = it
	}

	representatives := Dataset{items[0]}
	clusters := [][]string{{items[0].ID}}
	unassigned := append(Dataset(nil), items[1:]...)

	var result GroupByResult
	phase := 0
	for len(unassigned) > 0 {
		plan, err := PlanGroupByPhase(unassigned, representatives, phase, reps)
		if err != nil {
			return GroupByResult{}, err
		}
		exec := *e
		exec.Config.Seed = e.Config.Seed + uint64(phase+1)*0x9e3779b9
		out, err := exec.RunPlan(plan, policy)
		if err != nil {
			return GroupByResult{}, err
		}
		result.Makespan += out.Makespan
		result.Phases = append(result.Phases, out)

		// Strongest majority-yes representative per item.
		type match struct {
			cluster int
			yes     int
			votes   int
		}
		best := make(map[string]match, len(unassigned))
		repIndex := make(map[string]int, len(representatives))
		for ci, members := range clusters {
			repIndex[members[0]] = ci
		}
		for _, d := range out.Decisions {
			if !d.Outcome {
				continue
			}
			ci, ok := repIndex[d.Task.B]
			if !ok {
				return GroupByResult{}, fmt.Errorf("crowddb: vote against unknown representative %q", d.Task.B)
			}
			m, seen := best[d.Task.A]
			// Prefer the larger yes-fraction; break ties toward the
			// earlier cluster for determinism.
			better := !seen ||
				d.YesVotes*m.votes > m.yes*d.Votes ||
				(d.YesVotes*m.votes == m.yes*d.Votes && ci < m.cluster)
			if better {
				best[d.Task.A] = match{cluster: ci, yes: d.YesVotes, votes: d.Votes}
			}
		}

		var leftover Dataset
		founded := false
		for _, it := range unassigned {
			if m, ok := best[it.ID]; ok {
				clusters[m.cluster] = append(clusters[m.cluster], it.ID)
				continue
			}
			if !founded {
				// First unmatched item founds the next cluster; the rest
				// wait so two items of one new category cannot both
				// become representatives.
				clusters = append(clusters, []string{it.ID})
				representatives = append(representatives, byID[it.ID])
				founded = true
				continue
			}
			leftover = append(leftover, it)
		}
		unassigned = leftover
		phase++
	}
	result.Clusters = clusters
	return result, nil
}
