// Package adaptive closes the loop the paper sketches in Sec 3.3: a
// requester rarely knows the market's true price→rate curve up front, so
// the controller here interleaves tuning with inference. The job runs in
// repetition waves; each wave is priced with the current belief about
// λo(c), the wave's observed acceptance latencies update the belief (MLE
// per price level, then a linearity fit once two price levels have been
// observed), and the remaining budget is re-tuned before the next wave.
//
// The controller's value is measured against two anchors in the tests:
// an oracle that tunes with the true model from the start, and a
// stubborn controller that never updates its (wrong) prior.
package adaptive

import (
	"fmt"
	"sort"

	"hputune/internal/htuning"
	"hputune/internal/inference"
	"hputune/internal/market"
	"hputune/internal/numeric"
	"hputune/internal/pricing"
)

// GroupSpec is one group of identical tasks to run adaptively.
type GroupSpec struct {
	// Name labels the group in traces.
	Name string
	// Tasks and Reps define the group's workload.
	Tasks int
	Reps  int
	// TrueClass is the marketplace's actual behaviour (unknown to the
	// tuner; the controller only ever reads its answers' timing).
	TrueClass *market.TaskClass
}

// Controller runs a multi-group job with interleaved inference and
// re-tuning.
type Controller struct {
	// Groups is the workload.
	Groups []GroupSpec
	// Budget is the total payment budget in units.
	Budget int
	// Prior is the initial belief about λo(c), shared by all groups.
	Prior pricing.RateModel
	// Seed drives both the marketplace and any sampling.
	Seed uint64
	// Freeze disables belief updates (the "stubborn" baseline).
	Freeze bool
	// MinObservations is the number of on-hold samples a price level
	// needs before it contributes to the belief (default 5).
	MinObservations int
}

// Report is the outcome of an adaptive run.
type Report struct {
	// Makespan is the total wall-clock time across waves.
	Makespan float64
	// Spent is the number of budget units paid out.
	Spent int
	// WavePrices records the per-group price chosen for each wave.
	WavePrices [][]int
	// PriceLevels and RateEstimates are the final belief's support: the
	// observed price levels and their MLE rates.
	PriceLevels   []float64
	RateEstimates []float64
	// FinalFit is the linearity fit over the observed levels (zero value
	// if fewer than two levels were observed).
	FinalFit numeric.LinearFit
}

// validate checks the controller configuration.
func (c *Controller) validate() error {
	if len(c.Groups) == 0 {
		return fmt.Errorf("adaptive: no groups")
	}
	minBudget := 0
	for i, g := range c.Groups {
		if g.Tasks < 1 || g.Reps < 1 {
			return fmt.Errorf("adaptive: group %d has %d tasks × %d reps", i, g.Tasks, g.Reps)
		}
		if err := g.TrueClass.Validate(); err != nil {
			return fmt.Errorf("adaptive: group %d: %w", i, err)
		}
		minBudget += g.Tasks * g.Reps
	}
	if c.Budget < minBudget {
		return fmt.Errorf("%w: budget %d below %d repetitions", htuning.ErrBudgetTooSmall, c.Budget, minBudget)
	}
	if c.Prior == nil {
		return fmt.Errorf("adaptive: nil prior model")
	}
	return nil
}

// belief tracks observed on-hold durations per price level and produces
// the current λo(c) model.
type belief struct {
	prior     pricing.RateModel
	durations map[int][]float64 // price level → observed on-hold durations
	minObs    int
}

func newBelief(prior pricing.RateModel, minObs int) *belief {
	if minObs < 1 {
		minObs = 5
	}
	return &belief{prior: prior, durations: map[int][]float64{}, minObs: minObs}
}

func (b *belief) observe(price int, onhold float64) {
	b.durations[price] = append(b.durations[price], onhold)
}

// levels returns the observed price levels with enough samples, sorted,
// with their MLE rates.
func (b *belief) levels() (prices, rates []float64) {
	var ps []int
	for p, ds := range b.durations {
		if len(ds) >= b.minObs {
			ps = append(ps, p)
		}
	}
	sort.Ints(ps)
	for _, p := range ps {
		est, err := inference.EstimateFromDurations(b.durations[p])
		if err != nil {
			continue
		}
		prices = append(prices, float64(p))
		rates = append(rates, est.Rate)
	}
	return prices, rates
}

// model returns the current belief: the prior until data arrives, a
// scaled prior with one observed level, a fresh linear fit with two or
// more.
func (b *belief) model() (pricing.RateModel, numeric.LinearFit) {
	prices, rates := b.levels()
	switch len(prices) {
	case 0:
		return b.prior, numeric.LinearFit{}
	case 1:
		predicted := b.prior.Rate(prices[0])
		if predicted <= 0 {
			return b.prior, numeric.LinearFit{}
		}
		return pricing.Scaled{Base: b.prior, Factor: rates[0] / predicted}, numeric.LinearFit{}
	}
	fit, err := numeric.FitLinear(prices, rates)
	if err != nil || fit.Slope <= 0 {
		// A non-increasing fit would break the tuner's monotonicity
		// assumption; fall back to scaling the prior at the richest level.
		predicted := b.prior.Rate(prices[len(prices)-1])
		if predicted <= 0 {
			return b.prior, numeric.LinearFit{}
		}
		return pricing.Scaled{Base: b.prior, Factor: rates[len(rates)-1] / predicted}, fit
	}
	// A negative intercept (common when the fit extrapolates below the
	// observed price range) would give non-positive rates at low prices;
	// floor the model there.
	return pricing.Floored{Base: pricing.Linear{K: fit.Slope, B: fit.Intercept}}, fit
}

// Run executes the job wave by wave and returns the report.
func (c *Controller) Run() (Report, error) {
	if err := c.validate(); err != nil {
		return Report{}, err
	}
	bel := newBelief(c.Prior, c.MinObservations)
	maxReps := 0
	for _, g := range c.Groups {
		if g.Reps > maxReps {
			maxReps = g.Reps
		}
	}
	var report Report
	remaining := c.Budget
	est := htuning.NewEstimator()
	for wave := 0; wave < maxReps; wave++ {
		// Groups still active this wave, with one repetition each.
		var active []int
		for gi, g := range c.Groups {
			if g.Reps > wave {
				active = append(active, gi)
			}
		}
		if len(active) == 0 {
			break
		}
		model, fit := bel.model()
		if c.Freeze {
			model, fit = c.Prior, numeric.LinearFit{}
		}
		report.FinalFit = fit

		// Plan the whole remaining job under the current belief — the
		// belief shapes how the budget is paced across waves — then
		// execute only the next wave and re-plan after observing it.
		prices, err := planRemaining(est, c.Groups, wave, maxReps, model, remaining)
		if err != nil {
			return Report{}, fmt.Errorf("adaptive: wave %d: %w", wave, err)
		}
		report.WavePrices = append(report.WavePrices, prices)

		// Post the wave and observe.
		sim, err := market.New(market.Config{Seed: c.Seed + uint64(wave)*0x9e3779b9})
		if err != nil {
			return Report{}, err
		}
		for ai, gi := range active {
			g := c.Groups[gi]
			for t := 0; t < g.Tasks; t++ {
				err := sim.Post(market.TaskSpec{
					ID:        fmt.Sprintf("%s-t%d-w%d", g.Name, t, wave),
					Class:     g.TrueClass,
					RepPrices: []int{prices[ai]},
				})
				if err != nil {
					return Report{}, err
				}
			}
		}
		results, err := sim.Run()
		if err != nil {
			return Report{}, err
		}
		report.Makespan += sim.Makespan()
		for _, res := range results {
			for _, rec := range res.Reps {
				report.Spent += rec.Price
				remaining -= rec.Price
				bel.observe(rec.Price, rec.OnHold())
			}
		}
	}
	report.PriceLevels, report.RateEstimates = bel.levels()
	return report, nil
}

// planRemaining allocates the remaining budget across every remaining
// (wave, group) repetition under the believed model: waves run
// sequentially, so the planner minimizes the sum of expected wave
// latencies (the paper's Scenario II surrogate, with each wave-group as
// its own single-repetition pseudo-group). Only the next wave's prices
// are returned; the rest of the plan is provisional and recomputed after
// the wave's observations update the belief.
func planRemaining(est *htuning.Estimator, groups []GroupSpec, wave, maxReps int, model pricing.RateModel, budget int) ([]int, error) {
	var pseudo []htuning.Group
	nextWave := 0
	for s := wave; s < maxReps; s++ {
		for _, g := range groups {
			if g.Reps <= s {
				continue
			}
			pseudo = append(pseudo, htuning.Group{
				Type: &htuning.TaskType{
					Name:     fmt.Sprintf("%s@w%d", g.Name, s),
					Accept:   model,
					ProcRate: g.TrueClass.ProcRate,
				},
				Tasks: g.Tasks,
				Reps:  1,
			})
			if s == wave {
				nextWave++
			}
		}
	}
	p := htuning.Problem{Groups: pseudo, Budget: budget}
	// Cached means are keyed by the model's rates, so sharing the
	// estimator across evolving beliefs is safe.
	res, err := htuning.SolveRepetition(est, p)
	if err != nil {
		return nil, err
	}
	return res.Prices[:nextWave], nil
}
