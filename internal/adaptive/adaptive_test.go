package adaptive

import (
	"math"
	"testing"

	"hputune/internal/market"
	"hputune/internal/pricing"
)

// trueModel is the market's actual acceptance behaviour in these tests.
var trueModel = pricing.Linear{K: 1, B: 1}

func testGroups() []GroupSpec {
	class := &market.TaskClass{
		Name:     "vote",
		Accept:   trueModel,
		ProcRate: 4,
		Accuracy: 1,
	}
	return []GroupSpec{
		{Name: "g3", Tasks: 25, Reps: 3, TrueClass: class},
		{Name: "g5", Tasks: 25, Reps: 5, TrueClass: class},
	}
}

func TestControllerValidation(t *testing.T) {
	c := &Controller{Groups: testGroups(), Budget: 10, Prior: trueModel}
	if _, err := c.Run(); err == nil {
		t.Error("starved budget accepted")
	}
	c = &Controller{Budget: 1000, Prior: trueModel}
	if _, err := c.Run(); err == nil {
		t.Error("empty groups accepted")
	}
	c = &Controller{Groups: testGroups(), Budget: 1000}
	if _, err := c.Run(); err == nil {
		t.Error("nil prior accepted")
	}
	bad := testGroups()
	bad[0].Tasks = 0
	c = &Controller{Groups: bad, Budget: 1000, Prior: trueModel}
	if _, err := c.Run(); err == nil {
		t.Error("zero-task group accepted")
	}
}

func TestControllerCompletesAndSpendsWithinBudget(t *testing.T) {
	c := &Controller{Groups: testGroups(), Budget: 1500, Prior: trueModel, Seed: 3}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Error("no makespan")
	}
	if rep.Spent > c.Budget {
		t.Errorf("overspent: %d > %d", rep.Spent, c.Budget)
	}
	// 5 waves: max reps across groups.
	if len(rep.WavePrices) != 5 {
		t.Errorf("got %d waves, want 5", len(rep.WavePrices))
	}
	// Wave 0 prices cover both groups; wave 4 only the 5-rep group.
	if len(rep.WavePrices[0]) != 2 || len(rep.WavePrices[4]) != 1 {
		t.Errorf("wave price shapes wrong: %v", rep.WavePrices)
	}
}

func TestBeliefRecoversTrueModel(t *testing.T) {
	// Start from a badly wrong prior; after the run the fitted model
	// should be close to the truth.
	wrongPrior := pricing.Linear{K: 6, B: 0.2}
	c := &Controller{Groups: testGroups(), Budget: 2500, Prior: wrongPrior, Seed: 11}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PriceLevels) < 1 {
		t.Fatal("no price levels observed")
	}
	// Each observed level's MLE must be near the true rate.
	for i, p := range rep.PriceLevels {
		want := trueModel.Rate(p)
		got := rep.RateEstimates[i]
		if math.Abs(got-want) > 0.35*want {
			t.Errorf("price %v: λ̂ = %v, true %v", p, got, want)
		}
	}
	if len(rep.PriceLevels) >= 2 {
		if math.Abs(rep.FinalFit.Slope-1) > 0.5 {
			t.Errorf("fitted slope %v, true 1", rep.FinalFit.Slope)
		}
	}
}

func TestAdaptiveBeatsFrozenWrongPrior(t *testing.T) {
	// Belief shape only matters when the workload is asymmetric: the
	// planner equalizes per-cost marginal gains (H_n/n)·g(p) across
	// groups, so with equal task counts every belief yields the same
	// near-uniform plan. Here a 40-task group faces a 10-task group, and
	// the wrong prior believes price barely moves the rate (g almost
	// flat): its plan starves the big group at price 1 and dumps the
	// budget on the small group. A frozen controller repeats that
	// mistake every wave; the adaptive controller observes wave 0 and
	// recovers the true model, so it must finish clearly faster.
	class := &market.TaskClass{Name: "vote", Accept: trueModel, ProcRate: 4, Accuracy: 1}
	groups := []GroupSpec{
		{Name: "big", Tasks: 40, Reps: 3, TrueClass: class},
		{Name: "small", Tasks: 10, Reps: 5, TrueClass: class},
	}
	wrongPrior := pricing.Linear{K: 0.05, B: 8}
	const rounds = 5
	meanMakespan := func(freeze bool) float64 {
		total := 0.0
		for r := 0; r < rounds; r++ {
			c := &Controller{
				Groups: groups,
				Budget: 2500,
				Prior:  wrongPrior,
				Seed:   uint64(100 + r),
				Freeze: freeze,
			}
			rep, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			total += rep.Makespan
		}
		return total / rounds
	}
	adaptive := meanMakespan(false)
	frozen := meanMakespan(true)
	if adaptive >= frozen {
		t.Errorf("adaptive %.3f not faster than frozen wrong prior %.3f", adaptive, frozen)
	}
}

func TestAdaptiveApproachesOracle(t *testing.T) {
	// The oracle starts with the true model. The adaptive run starts
	// wrong but must land within 2x of the oracle's makespan (it pays a
	// first-wave learning tax).
	const rounds = 5
	run := func(prior pricing.RateModel) float64 {
		total := 0.0
		for r := 0; r < rounds; r++ {
			c := &Controller{
				Groups: testGroups(),
				Budget: 2500,
				Prior:  prior,
				Seed:   uint64(500 + r),
			}
			rep, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			total += rep.Makespan
		}
		return total / rounds
	}
	oracle := run(trueModel)
	adaptive := run(pricing.Linear{K: 20, B: 0.1})
	if adaptive > 2*oracle {
		t.Errorf("adaptive %.3f more than 2x oracle %.3f", adaptive, oracle)
	}
}

func TestFreezeKeepsPrior(t *testing.T) {
	c := &Controller{Groups: testGroups(), Budget: 1500, Prior: trueModel, Seed: 9, Freeze: true}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalFit.N != 0 {
		t.Errorf("frozen controller fitted a model: %+v", rep.FinalFit)
	}
}

func TestBeliefFallbacks(t *testing.T) {
	b := newBelief(trueModel, 3)
	// No data: prior.
	m, _ := b.model()
	if m.Rate(2) != trueModel.Rate(2) {
		t.Error("empty belief should return the prior")
	}
	// One level with enough data: scaled prior.
	for i := 0; i < 5; i++ {
		b.observe(2, 0.5) // MLE rate 2; prior says 3 at price 2
	}
	m, _ = b.model()
	want := trueModel.Rate(2) * (2.0 / 3.0)
	if math.Abs(m.Rate(2)-want) > 1e-9 {
		t.Errorf("scaled belief Rate(2) = %v, want %v", m.Rate(2), want)
	}
	// Two levels: linear fit.
	for i := 0; i < 5; i++ {
		b.observe(4, 0.2) // MLE rate 5 at price 4
	}
	m, fit := b.model()
	if fit.N != 2 {
		t.Errorf("fit over %d levels, want 2", fit.N)
	}
	// Line through (2,2) and (4,5): slope 1.5, intercept -1.
	if math.Abs(m.Rate(2)-2) > 1e-6 || math.Abs(m.Rate(4)-5) > 1e-6 {
		t.Errorf("fitted model wrong: Rate(2)=%v Rate(4)=%v", m.Rate(2), m.Rate(4))
	}
}

func TestBeliefRejectsNegativeSlope(t *testing.T) {
	b := newBelief(trueModel, 2)
	// Observations implying rate falls with price (noise artifact).
	for i := 0; i < 3; i++ {
		b.observe(2, 0.2) // rate 5
		b.observe(4, 0.5) // rate 2
	}
	m, _ := b.model()
	// Fallback must still be increasing in price.
	if m.Rate(5) < m.Rate(2) {
		t.Errorf("belief not monotone: Rate(2)=%v Rate(5)=%v", m.Rate(2), m.Rate(5))
	}
}
