// Package trace serializes marketplace repetition records to CSV and
// JSON Lines and reads them back. Real tuning deployments feed observed
// traces into the inference pipeline (Sec 3.3 of the paper) offline;
// this package is the interchange layer between a simulator or platform
// crawl and the estimators.
//
// The opaque per-task Meta payload is not serialized: it is an in-process
// convenience, not part of the observable trace.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"hputune/internal/market"
)

// csvHeader is the column layout of the CSV format, in order.
var csvHeader = []string{
	"task_id", "rep", "price", "posted_at", "accepted", "done", "worker_id", "correct",
}

// WriteCSV writes records as CSV with a header row.
func WriteCSV(w io.Writer, recs []market.RepRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, r := range recs {
		row := []string{
			r.TaskID,
			strconv.Itoa(r.Rep),
			strconv.Itoa(r.Price),
			formatFloat(r.PostedAt),
			formatFloat(r.Accepted),
			formatFloat(r.Done),
			strconv.Itoa(r.WorkerID),
			strconv.FormatBool(r.Correct),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ReadCSV reads records written by WriteCSV. The header row is required
// and validated so column drift fails loudly instead of silently
// misparsing.
func ReadCSV(r io.Reader) ([]market.RepRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}
	var recs []market.RepRecord
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
}

func parseRow(row []string) (market.RepRecord, error) {
	rep, err := strconv.Atoi(row[1])
	if err != nil {
		return market.RepRecord{}, fmt.Errorf("rep: %w", err)
	}
	price, err := strconv.Atoi(row[2])
	if err != nil {
		return market.RepRecord{}, fmt.Errorf("price: %w", err)
	}
	posted, err := strconv.ParseFloat(row[3], 64)
	if err != nil {
		return market.RepRecord{}, fmt.Errorf("posted_at: %w", err)
	}
	accepted, err := strconv.ParseFloat(row[4], 64)
	if err != nil {
		return market.RepRecord{}, fmt.Errorf("accepted: %w", err)
	}
	done, err := strconv.ParseFloat(row[5], 64)
	if err != nil {
		return market.RepRecord{}, fmt.Errorf("done: %w", err)
	}
	worker, err := strconv.Atoi(row[6])
	if err != nil {
		return market.RepRecord{}, fmt.Errorf("worker_id: %w", err)
	}
	correct, err := strconv.ParseBool(row[7])
	if err != nil {
		return market.RepRecord{}, fmt.Errorf("correct: %w", err)
	}
	return market.RepRecord{
		TaskID:   row[0],
		Rep:      rep,
		Price:    price,
		PostedAt: posted,
		Accepted: accepted,
		Done:     done,
		WorkerID: worker,
		Correct:  correct,
	}, nil
}

// jsonRecord is the JSONL wire shape (Meta excluded).
type jsonRecord struct {
	TaskID   string  `json:"task_id"`
	Rep      int     `json:"rep"`
	Price    int     `json:"price"`
	PostedAt float64 `json:"posted_at"`
	Accepted float64 `json:"accepted"`
	Done     float64 `json:"done"`
	WorkerID int     `json:"worker_id"`
	Correct  bool    `json:"correct"`
}

// WriteJSONL writes one JSON object per line.
func WriteJSONL(w io.Writer, recs []market.RepRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range recs {
		jr := jsonRecord{
			TaskID:   r.TaskID,
			Rep:      r.Rep,
			Price:    r.Price,
			PostedAt: r.PostedAt,
			Accepted: r.Accepted,
			Done:     r.Done,
			WorkerID: r.WorkerID,
			Correct:  r.Correct,
		}
		if err := enc.Encode(jr); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads records written by WriteJSONL. Blank lines are skipped.
func ReadJSONL(r io.Reader) ([]market.RepRecord, error) {
	var recs []market.RepRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(raw, &jr); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		recs = append(recs, market.RepRecord{
			TaskID:   jr.TaskID,
			Rep:      jr.Rep,
			Price:    jr.Price,
			PostedAt: jr.PostedAt,
			Accepted: jr.Accepted,
			Done:     jr.Done,
			WorkerID: jr.WorkerID,
			Correct:  jr.Correct,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return recs, nil
}

// OnHoldDurations extracts the per-record on-hold latencies — the sample
// the rate estimators consume.
func OnHoldDurations(recs []market.RepRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.OnHold()
	}
	return out
}

// ProcessingDurations extracts the per-record processing latencies.
func ProcessingDurations(recs []market.RepRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.Processing()
	}
	return out
}

// GroupByPrice buckets records by offered price, the shape the linearity
// fit consumes (one rate estimate per price level).
func GroupByPrice(recs []market.RepRecord) map[int][]market.RepRecord {
	out := make(map[int][]market.RepRecord)
	for _, r := range recs {
		out[r.Price] = append(out[r.Price], r)
	}
	return out
}
