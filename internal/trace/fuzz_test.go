package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"hputune/internal/market"
)

// fuzzSeedRecords is a corpus of valid records covering the field edge
// cases (negative times, huge values, quoting-hostile IDs).
func fuzzSeedRecords() []market.RepRecord {
	return []market.RepRecord{
		{TaskID: "t-0", Rep: 1, Price: 3, PostedAt: 0, Accepted: 0.5, Done: 1.25, WorkerID: 7, Correct: true},
		{TaskID: "id,with,commas", Rep: 2, Price: 1, PostedAt: 1e-9, Accepted: 2e-9, Done: 3e-9, WorkerID: 0, Correct: false},
		{TaskID: `id"quoted"`, Rep: 0, Price: 0, PostedAt: -1, Accepted: -0.5, Done: 0, WorkerID: -3, Correct: true},
		{TaskID: "big", Rep: 1 << 30, Price: 1 << 20, PostedAt: 1e300, Accepted: 1e300, Done: 1e300, WorkerID: 1 << 30, Correct: false},
		{TaskID: "", Rep: 0, Price: 0, PostedAt: 0, Accepted: 0, Done: 0, WorkerID: 0, Correct: false},
	}
}

// csvRecordsEqual compares records with NaN-aware float equality: CSV
// can carry "NaN" (strconv parses it), and NaN != NaN would fail a
// faithful round trip.
func csvRecordsEqual(a, b []market.RepRecord) bool {
	if len(a) != len(b) {
		return false
	}
	feq := func(x, y float64) bool { return x == y || (math.IsNaN(x) && math.IsNaN(y)) }
	for i := range a {
		if a[i].TaskID != b[i].TaskID || a[i].Rep != b[i].Rep || a[i].Price != b[i].Price ||
			a[i].WorkerID != b[i].WorkerID || a[i].Correct != b[i].Correct ||
			!feq(a[i].PostedAt, b[i].PostedAt) || !feq(a[i].Accepted, b[i].Accepted) || !feq(a[i].Done, b[i].Done) {
			return false
		}
	}
	return true
}

// FuzzReadCSV checks that ReadCSV never panics on arbitrary input, and
// that anything it accepts reaches a write→read fixed point after one
// cycle. The first parse may normalize its input (Go's csv.Reader folds
// quoted \r\n to \n), so the invariant is checked between the second
// and third images, where the representation is canonical.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, fuzzSeedRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("task_id,rep,price,posted_at,accepted,done,worker_id,correct\n")
	f.Add("task_id,rep,price,posted_at,accepted,done,worker_id,correct\na,1,2,x,4,5,6,true\n")
	f.Add("task_id,rep,price,posted_at,accepted,done,worker_id,correct\na,1,2,NaN,4,5,6,true\n")
	f.Add("task_id,rep,price,posted_at,accepted,done,worker_id,correct\n\"a\r\r\n\",1,2,3,4,5,6,true\n")
	f.Add("not,a,header\n")
	f.Add("")
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadCSV(strings.NewReader(input)) // must not panic
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, recs); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\ninput: %q", err, out.String())
		}
		if len(recs) != len(again) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		var out2 bytes.Buffer
		if err := WriteCSV(&out2, again); err != nil {
			t.Fatalf("second serialization failed: %v", err)
		}
		third, err := ReadCSV(&out2)
		if err != nil {
			t.Fatalf("second round trip failed to parse: %v", err)
		}
		if !csvRecordsEqual(again, third) {
			t.Fatalf("round trip has no fixed point:\n%v\nvs\n%v", again, third)
		}
	})
}

// FuzzReadJSONL checks the JSON Lines reader the same way.
func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fuzzSeedRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("{}\n")
	f.Add("{\"task_id\": \"a\"}\n\n{\"rep\": 3}\n")
	f.Add("{\"rep\": \"not a number\"}\n")
	f.Add("")
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadJSONL(strings.NewReader(input)) // must not panic
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSONL(&out, recs); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		again, err := ReadJSONL(&out)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\ninput: %q", err, out.String())
		}
		if len(recs) != len(again) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		if len(recs) > 0 && !reflect.DeepEqual(recs, again) {
			t.Fatalf("round trip changed records:\n%v\nvs\n%v", recs, again)
		}
	})
}
