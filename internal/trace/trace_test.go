package trace

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
)

func sampleRecords(t *testing.T, n int, seed uint64) []market.RepRecord {
	t.Helper()
	class := &market.TaskClass{
		Name:     "vote",
		Accept:   pricing.Linear{K: 1, B: 1},
		ProcRate: 2,
		Accuracy: 0.8,
	}
	sim, err := market.New(market.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		err := sim.Post(market.TaskSpec{
			ID:        fmt.Sprintf("t%d", i),
			Class:     class,
			RepPrices: []int{1 + i%4, 2},
			Meta:      i, // must NOT survive serialization
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return sim.AllRecords()
}

func recordsEqual(a, b market.RepRecord) bool {
	return a.TaskID == b.TaskID && a.Rep == b.Rep && a.Price == b.Price &&
		a.PostedAt == b.PostedAt && a.Accepted == b.Accepted &&
		a.Done == b.Done && a.WorkerID == b.WorkerID && a.Correct == b.Correct
}

func TestCSVRoundTrip(t *testing.T) {
	recs := sampleRecords(t, 12, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d -> %d", len(recs), len(back))
	}
	for i := range recs {
		if !recordsEqual(recs[i], back[i]) {
			t.Errorf("record %d changed: %+v -> %+v", i, recs[i], back[i])
		}
		if back[i].Meta != nil {
			t.Errorf("record %d Meta survived serialization: %v", i, back[i].Meta)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := sampleRecords(t, 12, 5)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d -> %d", len(recs), len(back))
	}
	for i := range recs {
		if !recordsEqual(recs[i], back[i]) {
			t.Errorf("record %d changed: %+v -> %+v", i, recs[i], back[i])
		}
	}
}

func TestCSVRejectsWrongHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("wrong header accepted")
	}
	bad := "task_id,rep,price,posted_at,accepted,done,worker_id,wrong\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("renamed column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCSVRejectsMalformedRows(t *testing.T) {
	header := strings.Join([]string{"task_id", "rep", "price", "posted_at", "accepted", "done", "worker_id", "correct"}, ",")
	for _, row := range []string{
		"t0,notanint,1,0,1,2,0,true",
		"t0,0,notanint,0,1,2,0,true",
		"t0,0,1,notafloat,1,2,0,true",
		"t0,0,1,0,notafloat,2,0,true",
		"t0,0,1,0,1,notafloat,0,true",
		"t0,0,1,0,1,2,notanint,true",
		"t0,0,1,0,1,2,0,notabool",
		"t0,0,1,0,1,2,0", // short row
	} {
		_, err := ReadCSV(strings.NewReader(header + "\n" + row + "\n"))
		if err == nil {
			t.Errorf("malformed row accepted: %q", row)
		}
	}
}

func TestJSONLRejectsMalformed(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Blank lines are tolerated.
	recs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank input: %v, %v", recs, err)
	}
}

func TestCSVEmptyRecords(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("empty trace read back %d records", len(recs))
	}
}

func TestDurationExtraction(t *testing.T) {
	recs := []market.RepRecord{
		{PostedAt: 0, Accepted: 2, Done: 5},
		{PostedAt: 1, Accepted: 4, Done: 4.5},
	}
	oh := OnHoldDurations(recs)
	pr := ProcessingDurations(recs)
	if oh[0] != 2 || oh[1] != 3 {
		t.Errorf("on-hold %v, want [2 3]", oh)
	}
	if pr[0] != 3 || pr[1] != 0.5 {
		t.Errorf("processing %v, want [3 0.5]", pr)
	}
}

func TestGroupByPrice(t *testing.T) {
	recs := sampleRecords(t, 16, 9)
	buckets := GroupByPrice(recs)
	total := 0
	for price, group := range buckets {
		total += len(group)
		for _, r := range group {
			if r.Price != price {
				t.Errorf("record with price %d in bucket %d", r.Price, price)
			}
		}
	}
	if total != len(recs) {
		t.Errorf("buckets hold %d of %d records", total, len(recs))
	}
}

func TestCSVPreservesFloatPrecisionProperty(t *testing.T) {
	// Property: arbitrary float64 latencies survive the CSV round trip
	// bit-for-bit (the 'g/-1' format is shortest-exact).
	prop := func(posted, hold, proc float64) bool {
		posted = math.Abs(posted)
		hold = math.Abs(hold)
		proc = math.Abs(proc)
		if math.IsInf(posted, 0) || math.IsInf(hold, 0) || math.IsInf(proc, 0) {
			return true
		}
		rec := market.RepRecord{
			TaskID:   "t",
			Price:    1,
			PostedAt: posted,
			Accepted: posted + hold,
			Done:     posted + hold + proc,
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, []market.RepRecord{rec}); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil || len(back) != 1 {
			return false
		}
		return recordsEqual(rec, back[0])
	}
	cfg := &quick.Config{MaxCount: 200, Rand: nil}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestJSONLLargeTrace(t *testing.T) {
	// A larger simulated trace exercises the scanner buffer path.
	r := randx.New(11)
	recs := make([]market.RepRecord, 5000)
	for i := range recs {
		recs[i] = market.RepRecord{
			TaskID:   fmt.Sprintf("task-%d", i),
			Rep:      i % 5,
			Price:    1 + i%9,
			PostedAt: r.Float64() * 100,
			WorkerID: i,
			Correct:  i%3 == 0,
		}
		recs[i].Accepted = recs[i].PostedAt + r.Exp(1)
		recs[i].Done = recs[i].Accepted + r.Exp(2)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("lost records: %d -> %d", len(recs), len(back))
	}
	for i := 0; i < len(recs); i += 997 {
		if !recordsEqual(recs[i], back[i]) {
			t.Errorf("record %d changed", i)
		}
	}
}
