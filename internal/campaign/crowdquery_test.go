package campaign

import (
	"context"
	"strings"
	"testing"

	"hputune/internal/pricing"
)

// crowdCfg is a small, fast crowd-query campaign: an 8-item tournament
// top-k whose two phases finish in a handful of marketplace events.
func crowdCfg(seed uint64) Config {
	return Config{
		Name: "crowd-test",
		Query: &CrowdQuery{
			Kind:        "topk",
			Items:       8,
			K:           2,
			Reps:        3,
			DatasetSeed: 5,
			Accept:      pricing.Linear{K: 2, B: 0.5},
			ProcRate:    2,
		},
		Prior:       pricing.Linear{K: 1, B: 1},
		RoundBudget: 150,
		Budget:      2500,
		MaxRounds:   4,
		Epsilon:     0.05,
		Seed:        seed,
	}
}

func TestCrowdQueryConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"query plus executor", func(c *Config) {
			c.Executor = &blockingExecutor{}
		}, "mutually exclusive"},
		{"query plus groups", func(c *Config) {
			c.Groups = []Group{{Name: "g", Tasks: 1, Reps: 1, Class: linClass("t", 2, 0.5, 2)}}
		}, "Groups must be empty"},
		{"unknown kind", func(c *Config) { c.Query.Kind = "join" }, "unknown query kind"},
		{"k too large", func(c *Config) { c.Query.K = 8 }, "1 <= k < items"},
		{"k missing", func(c *Config) { c.Query.K = 0 }, "1 <= k < items"},
		{"groupby without classes", func(c *Config) {
			c.Query.Kind = "groupby"
			c.Query.Classes = nil
		}, "at least one class"},
		{"one item", func(c *Config) { c.Query.Items = 1; c.Query.K = 0 }, ""},
		{"empty value range", func(c *Config) { c.Query.ValueLo = 9; c.Query.ValueHi = 3 }, "value range"},
		{"no accept model", func(c *Config) { c.Query.Accept = nil }, "no true acceptance model"},
		{"bad proc rate", func(c *Config) { c.Query.ProcRate = 0 }, "must be positive"},
		{"bad deadline", func(c *Config) { c.Deadline = &DeadlineSLO{Makespan: -1} }, "makespan"},
		{"bad confidence", func(c *Config) { c.Deadline = &DeadlineSLO{Makespan: 5, Confidence: 2} }, "confidence"},
		{"bad max price", func(c *Config) { c.Deadline = &DeadlineSLO{Makespan: 5, MaxPrice: -3} }, "max price"},
		{"retainer zero workers", func(c *Config) {
			c.Retainer = &RetainerPool{ServiceRate: 1, Share: 0.5}
		}, "worker"},
		{"retainer share above one", func(c *Config) {
			c.Retainer = &RetainerPool{Workers: 2, ServiceRate: 1, Share: 1.5}
		}, "share"},
		{"retainer share zero", func(c *Config) {
			c.Retainer = &RetainerPool{Workers: 2, ServiceRate: 1}
		}, "share"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := crowdCfg(1)
			tc.mutate(&cfg)
			_, err := New(nil, cfg)
			if err == nil {
				t.Fatal("invalid crowd config accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCrowdQueryDerivedGroups: the solver prices exactly the workload
// the first query phase posts — one group per difficulty present, task
// counts matching the plan.
func TestCrowdQueryDerivedGroups(t *testing.T) {
	c, err := New(nil, crowdCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	groups := c.cfg.Groups
	if len(groups) == 0 {
		t.Fatal("no groups derived from the query plan")
	}
	// 8 items, pods of 4: two pods × C(4,2) comparisons = 12 tasks.
	total := 0
	for _, g := range groups {
		if g.Tasks < 1 || g.Reps != 3 {
			t.Errorf("group %q: %d tasks × %d reps, want >= 1 × 3", g.Name, g.Tasks, g.Reps)
		}
		if g.Class == nil {
			t.Fatalf("group %q has no market class", g.Name)
		}
		total += g.Tasks
	}
	if total != 12 {
		t.Errorf("derived groups cover %d tasks, first phase posts 12", total)
	}
}

// TestCrowdCampaignRunsToTerminal drives the two operators and both
// pricing regimes end to end and checks the snapshot extras each regime
// promises.
func TestCrowdCampaignRunsToTerminal(t *testing.T) {
	topk := crowdCfg(7)

	groupby := crowdCfg(8)
	groupby.Name = "crowd-test-groupby"
	groupby.Query = &CrowdQuery{
		Kind:        "groupby",
		Items:       9,
		Classes:     []string{"x", "y", "z"},
		Reps:        3,
		DatasetSeed: 6,
		Accept:      pricing.Linear{K: 2, B: 0.5},
		ProcRate:    2,
	}

	retained := crowdCfg(9)
	retained.Name = "crowd-test-retainer"
	retained.Retainer = &RetainerPool{Workers: 3, ServiceRate: 2, Fee: 0.5, Share: 0.5}

	sloed := crowdCfg(10)
	sloed.Name = "crowd-test-deadline"
	sloed.Deadline = &DeadlineSLO{Makespan: 6}

	for _, cfg := range []Config{topk, groupby, retained, sloed} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(context.Background(), nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Status.Terminal() {
				t.Fatalf("status %q not terminal", res.Status)
			}
			if res.RoundsRun == 0 {
				t.Fatal("no rounds ran")
			}
			for i, snap := range res.Rounds {
				if snap.Query == nil {
					t.Fatalf("round %d has no query info", i)
				}
				if snap.Query.Phases < 2 || snap.Query.Tasks == 0 || snap.Query.Paid == 0 {
					t.Errorf("round %d query info implausible: %+v", i, *snap.Query)
				}
				if snap.Query.Quality < 0 || snap.Query.Quality > 1 {
					t.Errorf("round %d quality %v outside [0, 1]", i, snap.Query.Quality)
				}
				if cfg.Deadline != nil {
					if snap.SLO == nil {
						t.Fatalf("round %d of a deadline campaign has no SLO info", i)
					}
					if snap.SLO.Deadline != cfg.Deadline.Makespan || snap.SLO.ComparatorCost < 1 {
						t.Errorf("round %d SLO info implausible: %+v", i, *snap.SLO)
					}
				} else if snap.SLO != nil {
					t.Errorf("round %d carries SLO info without a deadline", i)
				}
				if cfg.Retainer != nil {
					if snap.Retainer == nil {
						t.Fatalf("round %d of a retainer campaign has no retainer info", i)
					}
					if snap.Retainer.Workers != cfg.Retainer.Workers || snap.Retainer.Retained == 0 {
						t.Errorf("round %d retainer info implausible: %+v", i, *snap.Retainer)
					}
					// The fee is charged on top of crowd payments, and the
					// snapshot's spent must say so.
					if snap.Spent <= snap.Query.Paid {
						t.Errorf("round %d spent %d does not include the pool fee above paid %d", i, snap.Spent, snap.Query.Paid)
					}
				} else if snap.Retainer != nil {
					t.Errorf("round %d carries retainer info without a pool", i)
				}
			}
		})
	}
}

// TestCrowdSLOInfeasibleTerminal: an SLO no admissible price can meet
// terminates the campaign as slo-infeasible before any round is spent,
// and the terminal checkpoint restores.
func TestCrowdSLOInfeasibleTerminal(t *testing.T) {
	cfg := crowdCfg(11)
	cfg.Deadline = &DeadlineSLO{Makespan: 0.0001, Confidence: 0.99, MaxPrice: 2}
	j := &recJournal{}
	c, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SetJournal(j, "slo")
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSLOInfeasible {
		t.Fatalf("status %q, want %q", res.Status, StatusSLOInfeasible)
	}
	if res.RoundsRun != 0 || res.Spent != 0 {
		t.Errorf("infeasible SLO still ran %d rounds and spent %d", res.RoundsRun, res.Spent)
	}
	if len(j.finished) != 1 {
		t.Fatalf("journal recorded %d finishes, want 1", len(j.finished))
	}
	restored, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(j.finished[0].chk, nil); err != nil {
		t.Fatalf("restoring the slo-infeasible terminal checkpoint: %v", err)
	}
	if got := asJSON(t, restored.Snapshot()); got != asJSON(t, res) {
		t.Errorf("restored terminal snapshot diverged\n got  %s\n want %s", got, asJSON(t, res))
	}
}

// TestCrowdCampaignDeterminism: a crowd campaign is a pure function of
// (Config, Seed) in every regime, including the retainer's extra
// randomness stream.
func TestCrowdCampaignDeterminism(t *testing.T) {
	retained := crowdCfg(21)
	retained.Retainer = &RetainerPool{Workers: 3, ServiceRate: 2, Fee: 0.5, Share: 0.5}
	for _, cfg := range []Config{crowdCfg(20), retained} {
		a, err := Run(context.Background(), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(context.Background(), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if asJSON(t, a) != asJSON(t, b) {
			t.Errorf("%s: two runs of one config diverged", cfg.Name)
		}
	}
}

// TestCrowdRestoreContinuationBitIdentical extends the recovery
// contract to the crowd executor family: resuming a crowd-query
// campaign (with and without a retainer pool) from any completed
// round's checkpoint reproduces the uninterrupted run byte for byte.
func TestCrowdRestoreContinuationBitIdentical(t *testing.T) {
	retained := crowdCfg(31)
	retained.Name = "crowd-test-retainer"
	retained.Retainer = &RetainerPool{Workers: 3, ServiceRate: 2, Fee: 0.5, Share: 0.5}
	for _, cfg := range []Config{crowdCfg(30), retained} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			j := &recJournal{}
			ref, err := New(nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref.SetJournal(j, "ref")
			refRes, err := ref.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if refRes.RoundsRun < 2 {
				t.Fatalf("reference ran %d rounds; the test needs restorable middles", refRes.RoundsRun)
			}
			want := asJSON(t, refRes)
			for k, ev := range j.rounds {
				c, err := New(nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Restore(ev.chk, ev.ring); err != nil {
					t.Fatalf("restore at round %d: %v", k, err)
				}
				if ev.chk.Status.Terminal() {
					if got := asJSON(t, c.Snapshot()); got != want {
						t.Fatalf("terminal restore diverged\n got  %s\n want %s", got, want)
					}
					continue
				}
				res, err := c.Run(context.Background())
				if err != nil {
					t.Fatalf("resumed run from round %d: %v", k, err)
				}
				if got := asJSON(t, res); got != want {
					t.Fatalf("resume from round %d diverged\n got  %s\n want %s", k, got, want)
				}
			}
		})
	}
}
