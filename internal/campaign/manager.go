package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hputune/internal/htuning"
)

// ErrCapacity rejects a Start that would exceed the manager's active
// bound — the serving layer maps it to 503.
var ErrCapacity = errors.New("campaign: manager at active-campaign capacity")

// defaultMaxActive bounds concurrently running campaigns per manager.
const defaultMaxActive = 64

// maxRetained bounds finished campaigns kept for inspection; the oldest
// finished are evicted first (their round counts stay in the stats).
const maxRetained = 1024

// Manager owns the campaigns of one serving process: it starts them on
// background goroutines, bounds how many run at once, serves concurrent
// inspection snapshots, cancels on demand, and retains a bounded set of
// finished campaigns for later inspection. Safe for concurrent use.
type Manager struct {
	est       *htuning.Estimator
	maxActive int

	mu            sync.Mutex
	byID          map[string]*tracked
	order         []string // insertion order, for bounded retention
	nextID        uint64
	active        int
	started       uint64
	finished      uint64
	canceled      uint64
	evictedRounds uint64
	closed        bool
}

// tracked is one campaign under management.
type tracked struct {
	id     string
	c      *Campaign
	cancel context.CancelFunc
	done   chan struct{}
}

// NewManager builds a manager over a shared estimator (nil gets a fresh
// one). maxActive bounds concurrently running campaigns; <= 0 means 64.
func NewManager(est *htuning.Estimator, maxActive int) *Manager {
	if est == nil {
		est = htuning.NewEstimator()
	}
	if maxActive <= 0 {
		maxActive = defaultMaxActive
	}
	return &Manager{est: est, maxActive: maxActive, byID: make(map[string]*tracked)}
}

// Start launches one campaign and returns its id.
func (m *Manager) Start(cfg Config) (string, error) {
	ids, err := m.StartAll([]Config{cfg})
	if err != nil {
		return "", err
	}
	return ids[0], nil
}

// StartAll launches a fleet atomically: every config is validated and
// admitted before any campaign starts, so a rejected fleet launches
// nothing. IDs come back in config order.
func (m *Manager) StartAll(cfgs []Config) ([]string, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("campaign: empty fleet")
	}
	campaigns := make([]*Campaign, len(cfgs))
	for i, cfg := range cfgs {
		c, err := New(m.est, cfg)
		if err != nil {
			return nil, fmt.Errorf("campaign %d: %w", i, err)
		}
		campaigns[i] = c
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("campaign: manager is closed")
	}
	if m.active+len(cfgs) > m.maxActive {
		active := m.active
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d active + %d requested > %d)", ErrCapacity, active, len(cfgs), m.maxActive)
	}
	ids := make([]string, len(cfgs))
	for i, c := range campaigns {
		m.nextID++
		id := fmt.Sprintf("c%d", m.nextID)
		ctx, cancel := context.WithCancel(context.Background())
		t := &tracked{id: id, c: c, cancel: cancel, done: make(chan struct{})}
		m.byID[id] = t
		m.order = append(m.order, id)
		m.active++
		m.started++
		ids[i] = id
		go m.drive(t, ctx)
	}
	m.evictLocked()
	m.mu.Unlock()
	return ids, nil
}

// drive runs one campaign to its terminal status and releases its
// active slot. Run errors are already recorded in the campaign's
// terminal snapshot (StatusFailed), so they are not re-reported here.
func (m *Manager) drive(t *tracked, ctx context.Context) {
	_, _ = t.c.Run(ctx)
	t.cancel() // release the context's resources
	_, status, _, _, _ := t.c.Brief()
	m.mu.Lock()
	m.active--
	m.finished++
	if status == StatusCanceled {
		m.canceled++
	}
	m.mu.Unlock()
	close(t.done)
}

// evictLocked drops the oldest finished campaigns past the retention
// bound. Active campaigns are never evicted (active <= maxActive <
// maxRetained keeps this safe). Caller holds m.mu.
func (m *Manager) evictLocked() {
	for len(m.order) > maxRetained {
		evicted := false
		for i, id := range m.order {
			t := m.byID[id]
			select {
			case <-t.done:
			default:
				continue // still running
			}
			m.evictedRounds += uint64(t.c.RoundsRun())
			delete(m.byID, id)
			m.order = append(m.order[:i], m.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// Get returns the campaign's current snapshot.
func (m *Manager) Get(id string) (Result, bool) {
	m.mu.Lock()
	t, ok := m.byID[id]
	m.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	return t.c.Snapshot(), true
}

// Cancel requests cancellation and returns the (possibly still
// StatusRunning) snapshot; the campaign settles to StatusCanceled — or
// the terminal status it had already reached — shortly after. Wait on
// Done to observe the terminal state.
func (m *Manager) Cancel(id string) (Result, bool) {
	m.mu.Lock()
	t, ok := m.byID[id]
	m.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	t.cancel()
	return t.c.Snapshot(), true
}

// Done returns a channel closed when the campaign reaches a terminal
// status.
func (m *Manager) Done(id string) (<-chan struct{}, bool) {
	m.mu.Lock()
	t, ok := m.byID[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return t.done, true
}

// Summary is one row of List.
type Summary struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Status    Status `json:"status"`
	RoundsRun int    `json:"roundsRun"`
	Spent     int    `json:"spent"`
	Converged bool   `json:"converged"`
}

// List returns a summary per retained campaign, in start order.
func (m *Manager) List() []Summary {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	byID := make(map[string]*tracked, len(ids))
	for _, id := range ids {
		byID[id] = m.byID[id]
	}
	m.mu.Unlock()
	out := make([]Summary, 0, len(ids))
	for _, id := range ids {
		// Brief, not Snapshot: a listing must not deep-copy every
		// retained campaign's round history.
		name, status, rounds, spent, converged := byID[id].c.Brief()
		out = append(out, Summary{
			ID: id, Name: name, Status: status,
			RoundsRun: rounds, Spent: spent, Converged: converged,
		})
	}
	return out
}

// Stats is the manager's counter snapshot for /v1/stats.
type Stats struct {
	// Started / Finished / Canceled count campaigns over the manager's
	// lifetime; Active is currently-running campaigns.
	Started  uint64 `json:"started"`
	Finished uint64 `json:"finished"`
	Canceled uint64 `json:"canceled"`
	Active   int    `json:"active"`
	// MaxActive is the admission bound (excess fleet starts are
	// rejected, mapped to 503 by the serving layer).
	MaxActive int `json:"maxActive"`
	// Rounds counts closed-loop rounds executed across every campaign
	// ever managed, including evicted ones.
	Rounds uint64 `json:"rounds"`
}

// Stats returns the current counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := Stats{
		Started: m.started, Finished: m.finished, Canceled: m.canceled,
		Active: m.active, MaxActive: m.maxActive, Rounds: m.evictedRounds,
	}
	trackedNow := make([]*tracked, 0, len(m.order))
	for _, id := range m.order {
		trackedNow = append(trackedNow, m.byID[id])
	}
	m.mu.Unlock()
	for _, t := range trackedNow {
		st.Rounds += uint64(t.c.RoundsRun())
	}
	return st
}

// Close cancels every campaign and waits for all of them to settle —
// the serving layer's shutdown hook. The manager accepts no new starts
// afterwards.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	waits := make([]*tracked, 0, len(m.order))
	for _, id := range m.order {
		waits = append(waits, m.byID[id])
	}
	m.mu.Unlock()
	for _, t := range waits {
		t.cancel()
	}
	for _, t := range waits {
		<-t.done
	}
}
