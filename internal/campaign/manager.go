package campaign

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"hputune/internal/htuning"
)

// ErrCapacity rejects a Start that would exceed the manager's active
// bound — the serving layer maps it to 503.
var ErrCapacity = errors.New("campaign: manager at active-campaign capacity")

// ErrClosed rejects starts and resumes on a closed (or suspended)
// manager — the draining-server state; the HTTP layer maps it to 503
// "suspended".
var ErrClosed = errors.New("campaign: manager is closed")

// defaultMaxActive bounds concurrently running campaigns per manager.
const defaultMaxActive = 64

// defaultRetained bounds finished campaigns kept for inspection; the
// oldest finished are evicted first. Their round counts stay in the
// stats, and when a journal is set their final state and history are
// exported to it before the drop (see ManagerJournal.Evicted).
const defaultRetained = 1024

// Manager owns the campaigns of one serving process: it starts them on
// background goroutines, bounds how many run at once, serves concurrent
// inspection snapshots, cancels on demand, and retains a bounded set of
// finished campaigns for later inspection. Safe for concurrent use.
type Manager struct {
	est       *htuning.Estimator
	maxActive int
	retain    int
	journal   ManagerJournal

	mu            sync.Mutex
	byID          map[string]*tracked
	order         []string // insertion order, for bounded retention
	nextID        uint64
	active        int
	started       uint64
	finished      uint64
	canceled      uint64
	evictedRounds uint64
	closed        bool
}

// tracked is one campaign under management.
type tracked struct {
	id     string
	c      *Campaign
	cancel context.CancelCauseFunc
	done   chan struct{}
}

// NewManager builds a manager over a shared estimator (nil gets a fresh
// one). maxActive bounds concurrently running campaigns; <= 0 means 64.
func NewManager(est *htuning.Estimator, maxActive int) *Manager {
	if est == nil {
		est = htuning.NewEstimator()
	}
	if maxActive <= 0 {
		maxActive = defaultMaxActive
	}
	return &Manager{est: est, maxActive: maxActive, retain: defaultRetained, byID: make(map[string]*tracked)}
}

// SetJournal wires every subsequently started or resumed campaign — and
// the retention-eviction export hook — to j. The serving layer's
// durable store sets it once, before any campaign starts; it is not
// synchronized with concurrent starts.
func (m *Manager) SetJournal(j ManagerJournal) { m.journal = j }

// Start launches one campaign and returns its id.
func (m *Manager) Start(cfg Config) (string, error) {
	ids, err := m.StartAll([]Config{cfg})
	if err != nil {
		return "", err
	}
	return ids[0], nil
}

// StartAll launches a fleet atomically: every config is validated and
// admitted before any campaign starts, so a rejected fleet launches
// nothing. IDs come back in config order.
func (m *Manager) StartAll(cfgs []Config) ([]string, error) {
	ids, launch, err := m.StartAllHeld(cfgs)
	if err != nil {
		return nil, err
	}
	launch()
	return ids, nil
}

// StartAllHeld validates and registers a fleet atomically like StartAll
// but defers the launch: the campaigns only begin running when the
// returned launch func is called (exactly once). The serving layer uses
// the window to write the fleet's durable start record before any
// campaign can journal a round, so replay always sees a fleet before
// its rounds. Held campaigns are already visible to Get/List/Cancel —
// a cancel before launch takes effect on the campaign's first step.
func (m *Manager) StartAllHeld(cfgs []Config) (ids []string, launch func(), err error) {
	if len(cfgs) == 0 {
		return nil, nil, fmt.Errorf("campaign: empty fleet")
	}
	campaigns := make([]*Campaign, len(cfgs))
	for i, cfg := range cfgs {
		c, err := New(m.est, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("campaign %d: %w", i, err)
		}
		campaigns[i] = c
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if m.active+len(cfgs) > m.maxActive {
		active := m.active
		m.mu.Unlock()
		return nil, nil, fmt.Errorf("%w (%d active + %d requested > %d)", ErrCapacity, active, len(cfgs), m.maxActive)
	}
	ids = make([]string, len(cfgs))
	held := make([]*tracked, len(cfgs))
	ctxs := make([]context.Context, len(cfgs))
	for i, c := range campaigns {
		m.nextID++
		id := fmt.Sprintf("c%d", m.nextID)
		ctx, cancel := context.WithCancelCause(context.Background())
		t := &tracked{id: id, c: c, cancel: cancel, done: make(chan struct{})}
		if m.journal != nil {
			c.SetJournal(m.journal, id)
		}
		m.byID[id] = t
		m.order = append(m.order, id)
		m.active++
		m.started++
		ids[i] = id
		held[i] = t
		ctxs[i] = ctx
	}
	m.evictLocked()
	m.mu.Unlock()
	return ids, func() {
		for i, t := range held {
			go m.drive(t, ctxs[i])
		}
	}, nil
}

// Resume re-registers a recovered campaign under its previously
// assigned id — the recovery path. A campaign restored to a terminal
// status becomes inspectable (Get/List) without running again; a
// resumable one is driven from its restored round immediately. Resume
// deliberately bypasses the active-campaign admission bound: the
// recovered state predates this process's configuration, and refusing
// to resume it would silently discard paid-for rounds.
func (m *Manager) Resume(id string, c *Campaign) error {
	if id == "" {
		return fmt.Errorf("campaign: Resume with an empty id")
	}
	_, status, _, _, _ := c.Brief()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if _, dup := m.byID[id]; dup {
		m.mu.Unlock()
		return fmt.Errorf("campaign: id %q already registered", id)
	}
	// Keep freshly generated ids disjoint from recovered ones.
	if n, ok := ParseCampaignID(id); ok && n > m.nextID {
		m.nextID = n
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	t := &tracked{id: id, c: c, cancel: cancel, done: make(chan struct{})}
	m.byID[id] = t
	m.order = append(m.order, id)
	if status.Terminal() {
		cancel(nil)
		close(t.done)
		m.mu.Unlock()
		return nil
	}
	if m.journal != nil {
		c.SetJournal(m.journal, id)
	}
	m.active++
	m.mu.Unlock()
	go m.drive(t, ctx)
	return nil
}

// RestoreCounters seeds the lifetime counters and the id generator
// from recovered state; the recovery path calls it once, before
// resuming any campaign (a resumed campaign that finishes increments
// on top of these). nextID must cover every id ever assigned —
// including archived campaigns no longer resumable — so a recovered
// manager never reuses one.
func (m *Manager) RestoreCounters(started, finished, canceled, evictedRounds, nextID uint64) {
	m.mu.Lock()
	m.started = started
	m.finished = finished
	m.canceled = canceled
	m.evictedRounds = evictedRounds
	if nextID > m.nextID {
		m.nextID = nextID
	}
	m.mu.Unlock()
}

// ParseCampaignID extracts the numeric suffix of a manager-generated
// "c<n>" id — the one parser shared by the manager, the durable store
// and recovery (overflow and malformed suffixes report !ok).
func ParseCampaignID(id string) (uint64, bool) {
	num, ok := strings.CutPrefix(id, "c")
	if !ok || num == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// drive runs one campaign to its settled status and releases its active
// slot. Run errors are already recorded in the campaign's terminal
// snapshot (StatusFailed), so they are not re-reported here. A
// suspended campaign (shutdown with intent to resume) settles without
// counting as finished — its durable state still says "running", and
// the restored counters of the next process pick it up from there.
func (m *Manager) drive(t *tracked, ctx context.Context) {
	_, _ = t.c.Run(ctx)
	t.cancel(nil) // release the context's resources
	_, status, _, _, _ := t.c.Brief()
	m.mu.Lock()
	m.active--
	if status.Terminal() {
		m.finished++
		if status == StatusCanceled {
			m.canceled++
		}
	}
	m.mu.Unlock()
	close(t.done)
}

// evictLocked drops the oldest finished campaigns past the retention
// bound, exporting each one's final state and retained round history to
// the journal first — eviction must never destroy the only copy of a
// campaign's history. Active (and suspended) campaigns are never
// evicted (active <= maxActive < retain keeps this safe). Caller holds
// m.mu.
func (m *Manager) evictLocked() {
	for len(m.order) > m.retain {
		evicted := false
		for i, id := range m.order {
			t := m.byID[id]
			select {
			case <-t.done:
			default:
				continue // still running
			}
			if _, status, _, _, _ := t.c.Brief(); !status.Terminal() {
				continue // suspended: resumable state, never evicted
			}
			if m.journal != nil {
				m.journal.Evicted(id, t.c.Checkpoint(), t.c.Snapshot().Rounds)
			}
			m.evictedRounds += uint64(t.c.RoundsRun())
			delete(m.byID, id)
			m.order = append(m.order[:i], m.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// Get returns the campaign's current snapshot.
func (m *Manager) Get(id string) (Result, bool) {
	m.mu.Lock()
	t, ok := m.byID[id]
	m.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	return t.c.Snapshot(), true
}

// Cancel requests cancellation and returns the (possibly still
// StatusRunning) snapshot; the campaign settles to StatusCanceled — or
// the terminal status it had already reached — shortly after. Wait on
// Done to observe the terminal state.
func (m *Manager) Cancel(id string) (Result, bool) {
	m.mu.Lock()
	t, ok := m.byID[id]
	m.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	t.cancel(nil)
	return t.c.Snapshot(), true
}

// Done returns a channel closed when the campaign reaches a settled
// (terminal or suspended) status.
func (m *Manager) Done(id string) (<-chan struct{}, bool) {
	m.mu.Lock()
	t, ok := m.byID[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return t.done, true
}

// Summary is one row of List.
type Summary struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Status    Status `json:"status"`
	RoundsRun int    `json:"roundsRun"`
	Spent     int    `json:"spent"`
	Converged bool   `json:"converged"`
}

// List returns a summary per retained campaign, in start order.
func (m *Manager) List() []Summary {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	byID := make(map[string]*tracked, len(ids))
	for _, id := range ids {
		byID[id] = m.byID[id]
	}
	m.mu.Unlock()
	out := make([]Summary, 0, len(ids))
	for _, id := range ids {
		// Brief, not Snapshot: a listing must not deep-copy every
		// retained campaign's round history.
		name, status, rounds, spent, converged := byID[id].c.Brief()
		out = append(out, Summary{
			ID: id, Name: name, Status: status,
			RoundsRun: rounds, Spent: spent, Converged: converged,
		})
	}
	return out
}

// Stats is the manager's counter snapshot for /v1/stats.
type Stats struct {
	// Started / Finished / Canceled count campaigns over the manager's
	// lifetime; Active is currently-running campaigns. Under a durable
	// store these counters survive restarts (recovery restores them from
	// the replayed state).
	Started  uint64 `json:"started"`
	Finished uint64 `json:"finished"`
	Canceled uint64 `json:"canceled"`
	Active   int    `json:"active"`
	// MaxActive is the admission bound (excess fleet starts are
	// rejected, mapped to 503 by the serving layer).
	MaxActive int `json:"maxActive"`
	// Rounds counts closed-loop rounds executed across every campaign
	// ever managed, including evicted ones.
	Rounds uint64 `json:"rounds"`
}

// Stats returns the current counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := Stats{
		Started: m.started, Finished: m.finished, Canceled: m.canceled,
		Active: m.active, MaxActive: m.maxActive, Rounds: m.evictedRounds,
	}
	trackedNow := make([]*tracked, 0, len(m.order))
	for _, id := range m.order {
		trackedNow = append(trackedNow, m.byID[id])
	}
	m.mu.Unlock()
	for _, t := range trackedNow {
		st.Rounds += uint64(t.c.RoundsRun())
	}
	return st
}

// Close cancels every campaign and waits for all of them to settle —
// the shutdown hook of a serving process without durable state. The
// manager accepts no new starts afterwards.
func (m *Manager) Close() { m.shutdown(nil) }

// Suspend stops every running campaign without a terminal status —
// campaigns settle as suspended, nothing terminal is journaled, and a
// recovery from the durable store resumes each one from its last
// completed round. The shutdown hook of a persistent serving process;
// Close is its discarding counterpart. The manager accepts no new
// starts afterwards.
func (m *Manager) Suspend() { m.shutdown(ErrSuspended) }

// shutdown closes the manager and cancels every campaign with cause.
func (m *Manager) shutdown(cause error) {
	m.mu.Lock()
	m.closed = true
	waits := make([]*tracked, 0, len(m.order))
	for _, id := range m.order {
		waits = append(waits, m.byID[id])
	}
	m.mu.Unlock()
	for _, t := range waits {
		t.cancel(cause)
	}
	for _, t := range waits {
		<-t.done
	}
}
