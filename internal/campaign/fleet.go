package campaign

import (
	"context"

	"hputune/internal/conc"
	"hputune/internal/engine"
	"hputune/internal/htuning"
)

// RunFleet drives every campaign to a terminal status on the engine's
// bounded worker pool (workers <= 0 means GOMAXPROCS), sharing one
// estimator so campaigns with overlapping (rate, shape) queries reuse
// each other's E[max] integrals. Results land in campaign order and the
// reported error is the lowest-index failure — and because each
// campaign's rounds are seeded only from its own Config.Seed, every
// result is identical no matter the pool width or what else shares the
// estimator.
func RunFleet(ctx context.Context, est *htuning.Estimator, cfgs []Config, workers int) ([]Result, error) {
	if est == nil {
		est = htuning.NewEstimator()
	}
	return engine.Map(len(cfgs), conc.Workers(workers), func(i int) (Result, error) {
		return Run(ctx, est, cfgs[i])
	})
}
