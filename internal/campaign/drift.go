package campaign

import (
	"fmt"
	"math"

	"hputune/internal/market"
	"hputune/internal/pricing"
)

// Drift kinds.
const (
	// DriftNone is a stationary market.
	DriftNone = ""
	// DriftRate multiplies every group's acceptance rate by
	// Factor^round — gradual worker-interest decay (Factor < 1) or
	// growth (Factor > 1).
	DriftRate = "rate"
	// DriftShock multiplies every group's acceptance rate by Factor
	// from round Round onward — a one-off market regime change (a
	// price-shock: the same payment suddenly buys less attention).
	DriftShock = "shock"
	// DriftShrink multiplies the worker arrival rate by Factor^round —
	// the worker pool thinning round over round. Requires the
	// worker-choice market.
	DriftShrink = "shrink"
)

// Drift perturbs the true market between rounds, while the tuner's
// belief only ever updates from observed traces — the model-vs-market
// divergence the closed loop exists to chase. The zero value is a
// stationary market.
type Drift struct {
	// Kind is one of DriftNone, DriftRate, DriftShock, DriftShrink.
	Kind string `json:"kind"`
	// Factor is the multiplicative perturbation (> 0; ignored for
	// DriftNone).
	Factor float64 `json:"factor,omitempty"`
	// Round is the onset round for DriftShock.
	Round int `json:"round,omitempty"`
}

// validate checks the drift against the market options it will perturb.
func (d Drift) validate(opts MarketOptions) error {
	switch d.Kind {
	case DriftNone:
		return nil
	case DriftRate, DriftShock, DriftShrink:
		if !(d.Factor > 0) || math.IsInf(d.Factor, 1) {
			return fmt.Errorf("campaign: %s drift needs a positive finite factor, got %v", d.Kind, d.Factor)
		}
		if d.Kind == DriftShock && d.Round < 0 {
			return fmt.Errorf("campaign: shock drift onset round %d must be >= 0", d.Round)
		}
		if d.Kind == DriftShrink && !opts.WorkerChoice {
			return fmt.Errorf("campaign: shrink drift thins the worker pool and needs the worker-choice market (set MarketOptions.WorkerChoice)")
		}
		return nil
	}
	return fmt.Errorf("campaign: unknown drift kind %q (want %q, %q or %q)", d.Kind, DriftRate, DriftShock, DriftShrink)
}

// apply returns round r's true classes and market configuration. The
// input groups and config are never mutated; scaling wraps the class
// acceptance models.
func (d Drift) apply(round int, groups []Group, base market.Config) ([]*market.TaskClass, market.Config) {
	classes := make([]*market.TaskClass, len(groups))
	for i, g := range groups {
		classes[i] = g.Class
	}
	switch d.Kind {
	case DriftRate:
		if f := math.Pow(d.Factor, float64(round)); f != 1 {
			classes = scaleClasses(classes, f)
		}
	case DriftShock:
		if round >= d.Round && d.Factor != 1 {
			classes = scaleClasses(classes, d.Factor)
		}
	case DriftShrink:
		base.ArrivalRate *= math.Pow(d.Factor, float64(round))
	}
	return classes, base
}

// scaleClasses wraps every class with a rate-scaled acceptance model.
func scaleClasses(classes []*market.TaskClass, factor float64) []*market.TaskClass {
	out := make([]*market.TaskClass, len(classes))
	for i, c := range classes {
		scaled := *c
		scaled.Accept = pricing.Scaled{Base: c.Accept, Factor: factor}
		out[i] = &scaled
	}
	return out
}
