package campaign_test

// Regression guard for the single-CPU benchmark lie: RunFleet used to be
// "parallel" only if GOMAXPROCS said so (workers=0), which on a 1-CPU
// machine silently took conc.Each's inline serial path — the parallel
// and serial fleet benchmarks then measured the same code. These tests
// pin that an explicit worker count really fans campaigns out across
// goroutines, independent of the machine's core count.

import (
	"context"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/htuning"
	"hputune/internal/workload"
)

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine N [running]:") — test-only; there is no API for it.
func goroutineID() uint64 {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	fields := strings.Fields(string(buf[:n]))
	if len(fields) < 2 {
		return 0
	}
	id, _ := strconv.ParseUint(fields[1], 10, 64)
	return id
}

// dispatchRecorder is an Executor that records which goroutines execute
// rounds. Until release is closed, every Execute blocks, so a multi-
// worker fleet cannot be drained by one fast goroutine before the
// others get a chance to claim work — the test controls release.
type dispatchRecorder struct {
	mu       sync.Mutex
	ids      map[uint64]bool
	release  chan struct{}
	released bool
	want     int // distinct goroutines that close release
}

func newDispatchRecorder(want int) *dispatchRecorder {
	r := &dispatchRecorder{ids: make(map[uint64]bool), release: make(chan struct{}), want: want}
	if want <= 1 {
		close(r.release)
		r.released = true
	}
	return r
}

func (r *dispatchRecorder) Execute(ctx context.Context, round int, p htuning.Problem, a htuning.Allocation, seed uint64) (campaign.Observation, error) {
	r.mu.Lock()
	if !r.ids[goroutineID()] {
		r.ids[goroutineID()] = true
		if len(r.ids) >= r.want && !r.released {
			r.released = true
			close(r.release)
		}
	}
	r.mu.Unlock()
	select {
	case <-r.release:
	case <-time.After(10 * time.Second):
		// Give up rather than deadlock; the goroutine-count assertion
		// below then fails with the real story.
	}
	return campaign.Observation{}, nil
}

func (r *dispatchRecorder) goroutines() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ids)
}

// dispatchFleet builds a small fleet whose rounds run on the recorder
// instead of the market simulator (zero-record observations keep every
// round cheap; the fleet still exercises the real solver and pool).
func dispatchFleet(campaigns int, rec *dispatchRecorder) []campaign.Config {
	cfgs := workload.BenchCampaignFleetSize(campaigns, 2)
	for i := range cfgs {
		cfgs[i].Executor = rec
	}
	return cfgs
}

// TestFleetDispatchesAcrossGoroutines is the assertion-style guard the
// fixed benchmark relies on: a 4-worker fleet must dispatch rounds on
// more than one goroutine even when GOMAXPROCS is 1.
func TestFleetDispatchesAcrossGoroutines(t *testing.T) {
	rec := newDispatchRecorder(2)
	cfgs := dispatchFleet(8, rec)
	results, err := campaign.RunFleet(context.Background(), htuning.NewEstimator(), cfgs, 4)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if len(results) != len(cfgs) {
		t.Fatalf("fleet returned %d results, want %d", len(results), len(cfgs))
	}
	if n := rec.goroutines(); n < 2 {
		t.Fatalf("4-worker fleet dispatched rounds on %d goroutine(s); the pool is not fanning out", n)
	}
}

// TestFleetSerialDispatchesOnOneGoroutine pins the denominator: one
// worker means the inline serial path, exactly one executing goroutine.
func TestFleetSerialDispatchesOnOneGoroutine(t *testing.T) {
	rec := newDispatchRecorder(1)
	cfgs := dispatchFleet(4, rec)
	if _, err := campaign.RunFleet(context.Background(), htuning.NewEstimator(), cfgs, 1); err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if n := rec.goroutines(); n != 1 {
		t.Fatalf("1-worker fleet dispatched rounds on %d goroutines, want 1", n)
	}
}
