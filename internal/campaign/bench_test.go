package campaign_test

// The benchmark fleet definition lives in workload.BenchCampaignFleet
// so that this benchmark and the htbench campaign suite measure the
// exact same workload (this file is an external test package because
// workload depends on campaign). BENCH_campaign.json records the
// trajectory; `make bench-campaign` regenerates it through htbench.

import (
	"context"
	"testing"

	"hputune/internal/campaign"
	"hputune/internal/htuning"
	"hputune/internal/workload"
)

// BenchmarkCampaignFleet is the repository's campaign-engine baseline
// (recorded in BENCH_campaign.json): 16 concurrent campaigns × 8 rounds
// per iteration on a 4-worker pool with a shared estimator. The width
// is explicit — workers=0 means GOMAXPROCS, which on a 1-CPU recorder
// silently took the serial inline path and made "parallel" and serial
// numbers identical. TestFleetDispatchesAcrossGoroutines guards the
// fan-out this benchmark now relies on.
func BenchmarkCampaignFleet(b *testing.B) {
	cfgs := workload.BenchCampaignFleet()
	est := htuning.NewEstimator()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := campaign.RunFleet(ctx, est, cfgs, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.RoundsRun != 8 {
				b.Fatalf("campaign %s ran %d rounds, want 8 (%s: %s)", r.Name, r.RoundsRun, r.Status, r.Reason)
			}
		}
	}
}

// BenchmarkCampaignFleetSerial is the same fleet on one worker — the
// parallel speedup denominator.
func BenchmarkCampaignFleetSerial(b *testing.B) {
	cfgs := workload.BenchCampaignFleet()
	est := htuning.NewEstimator()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.RunFleet(ctx, est, cfgs, 1); err != nil {
			b.Fatal(err)
		}
	}
}
