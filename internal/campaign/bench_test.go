package campaign

import (
	"context"
	"fmt"
	"testing"

	"hputune/internal/htuning"
	"hputune/internal/pricing"
)

// benchFleet builds the BENCH_campaign.json workload: 16 campaigns that
// each run exactly 8 full closed-loop rounds (epsilon 0 on a stationary
// two-price market never converges, the budget outlasts the deadline),
// so one iteration is 128 solve→simulate→re-fit rounds.
func benchFleet() []Config {
	cfgs := make([]Config, 16)
	for i := range cfgs {
		cfgs[i] = Config{
			Name: fmt.Sprintf("bench-%02d", i),
			Groups: []Group{
				{Name: "g3", Tasks: 50, Reps: 3, Class: linClass("t", 2, 0.5, 2)},
				{Name: "g5", Tasks: 50, Reps: 5, Class: linClass("t", 2, 0.5, 2)},
			},
			Prior:       pricing.Linear{K: 1, B: 1},
			RoundBudget: 1000,
			Budget:      16000,
			MaxRounds:   8,
			Epsilon:     0,
			Seed:        uint64(i + 1),
		}
	}
	return cfgs
}

// BenchmarkCampaignFleet is the repository's campaign-engine baseline
// (recorded in BENCH_campaign.json): 16 concurrent campaigns × 8 rounds
// per iteration on a GOMAXPROCS pool with a shared estimator.
func BenchmarkCampaignFleet(b *testing.B) {
	cfgs := benchFleet()
	est := htuning.NewEstimator()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := RunFleet(ctx, est, cfgs, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.RoundsRun != 8 {
				b.Fatalf("campaign %s ran %d rounds, want 8 (%s: %s)", r.Name, r.RoundsRun, r.Status, r.Reason)
			}
		}
	}
}

// BenchmarkCampaignFleetSerial is the same fleet on one worker — the
// parallel speedup denominator.
func BenchmarkCampaignFleetSerial(b *testing.B) {
	cfgs := benchFleet()
	est := htuning.NewEstimator()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFleet(ctx, est, cfgs, 1); err != nil {
			b.Fatal(err)
		}
	}
}
