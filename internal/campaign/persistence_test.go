package campaign

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// recJournal records every journal event, accumulating per-id history
// rings the way the durable store does.
type recJournal struct {
	mu       sync.Mutex
	rounds   []recRound
	finished []recFinished
	evicted  []recEvicted
}

type recRound struct {
	id   string
	snap RoundSnapshot
	chk  Checkpoint
	ring []RoundSnapshot // ring state as of this round, capped at HistoryCap
}

type recFinished struct {
	id  string
	chk Checkpoint
}

type recEvicted struct {
	id     string
	chk    Checkpoint
	rounds []RoundSnapshot
}

func (j *recJournal) Round(id string, snap RoundSnapshot, chk Checkpoint) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var ring []RoundSnapshot
	for i := len(j.rounds) - 1; i >= 0; i-- {
		if j.rounds[i].id == id {
			ring = append(ring, j.rounds[i].ring...)
			break
		}
	}
	ring = append(ring, snap)
	if len(ring) > chk.HistoryCap {
		ring = ring[len(ring)-chk.HistoryCap:]
	}
	j.rounds = append(j.rounds, recRound{id: id, snap: snap, chk: chk, ring: ring})
}

func (j *recJournal) Finished(id string, chk Checkpoint) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = append(j.finished, recFinished{id: id, chk: chk})
}

func (j *recJournal) Evicted(id string, chk Checkpoint, rounds []RoundSnapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.evicted = append(j.evicted, recEvicted{id: id, chk: chk, rounds: rounds})
}

// asJSON is the byte-identity yardstick: two values are "the same run"
// iff their JSON forms match exactly (floats marshal at round-trip
// precision, so this is bit-level for every numeric field).
func asJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(raw)
}

// TestRestoreContinuationBitIdentical is the determinism contract the
// whole recovery design leans on: a campaign restored from the
// checkpoint of ANY completed round and re-run produces a final result
// byte-identical to the uninterrupted run — remaining rounds, fits,
// deltas, status, reason and accounting included.
func TestRestoreContinuationBitIdentical(t *testing.T) {
	drifted := twoGroup(23)
	drifted.Name = "drifted"
	drifted.Drift = Drift{Kind: DriftRate, Factor: 0.9}
	drifted.Epsilon = 0 // drift keeps the fit moving: runs to the deadline

	tight := twoGroup(5)
	tight.Name = "tight"
	tight.Budget = 2500 // exhausts after two rounds

	for _, cfg := range []Config{twoGroup(7), drifted, tight} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			j := &recJournal{}
			ref, err := New(nil, cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			ref.SetJournal(j, "ref")
			refRes, err := ref.Run(context.Background())
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if refRes.RoundsRun < 2 {
				t.Fatalf("reference ran %d rounds; the test needs restorable middles", refRes.RoundsRun)
			}
			want := asJSON(t, refRes)
			for k, ev := range j.rounds {
				if ev.chk.Status.Terminal() {
					// The deciding round: restoring it yields the final
					// state without running anything.
					c, err := New(nil, cfg)
					if err != nil {
						t.Fatalf("New: %v", err)
					}
					if err := c.Restore(ev.chk, ev.ring); err != nil {
						t.Fatalf("restore terminal round %d: %v", k, err)
					}
					if got := asJSON(t, c.Snapshot()); got != want {
						t.Fatalf("terminal restore diverged\n got  %s\n want %s", got, want)
					}
					continue
				}
				c, err := New(nil, cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if err := c.Restore(ev.chk, ev.ring); err != nil {
					t.Fatalf("restore at round %d: %v", k, err)
				}
				res, err := c.Run(context.Background())
				if err != nil {
					t.Fatalf("resumed run from round %d: %v", k, err)
				}
				if got := asJSON(t, res); got != want {
					t.Fatalf("resume from round %d diverged from the uninterrupted run\n got  %s\n want %s", k, got, want)
				}
			}
		})
	}
}

// TestCheckpointSurvivesJSONBitExactly pins the serialization leg of
// the determinism contract: a checkpoint round-tripped through JSON (as
// the WAL stores it) restores a continuation identical to one restored
// from the live checkpoint.
func TestCheckpointSurvivesJSONBitExactly(t *testing.T) {
	cfg := twoGroup(31)
	j := &recJournal{}
	ref, err := New(nil, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref.SetJournal(j, "ref")
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	ev := j.rounds[1] // a mid-run checkpoint with a published fit
	if ev.chk.Fit == nil {
		t.Fatalf("round 1 checkpoint has no fit; pick a richer config")
	}
	raw, err := json.Marshal(ev.chk)
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	var chk Checkpoint
	if err := json.Unmarshal(raw, &chk); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	rawRing, err := json.Marshal(ev.ring)
	if err != nil {
		t.Fatalf("marshal ring: %v", err)
	}
	var ring []RoundSnapshot
	if err := json.Unmarshal(rawRing, &ring); err != nil {
		t.Fatalf("unmarshal ring: %v", err)
	}
	c, err := New(nil, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Restore(chk, ring); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got, want := asJSON(t, res), asJSON(t, refRes); got != want {
		t.Fatalf("JSON-round-tripped restore diverged\n got  %s\n want %s", got, want)
	}
}

func TestRestoreValidation(t *testing.T) {
	cfg := twoGroup(3)
	mk := func() *Campaign {
		c, err := New(nil, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return c
	}
	base := Checkpoint{Name: "two-group", Status: StatusRunning, RoundsRun: 1, HistoryCap: 64, Spent: 10, Remaining: cfg.Budget - 10}
	cases := []struct {
		name   string
		mutate func(*Checkpoint)
		rounds []RoundSnapshot
	}{
		{"wrong name", func(c *Checkpoint) { c.Name = "other" }, nil},
		{"unknown status", func(c *Checkpoint) { c.Status = "meh" }, nil},
		{"more snapshots than rounds", func(c *Checkpoint) { c.RoundsRun = 0 }, []RoundSnapshot{{}}},
		{"past deadline", func(c *Checkpoint) { c.RoundsRun = cfg.MaxRounds + 1 }, nil},
		{"broken accounting", func(c *Checkpoint) { c.Remaining = 0 }, nil},
	}
	for _, tc := range cases {
		chk := base
		tc.mutate(&chk)
		if err := mk().Restore(chk, tc.rounds); err == nil {
			t.Fatalf("%s: Restore accepted a bad checkpoint", tc.name)
		}
	}
	// A valid restore works exactly once per campaign.
	c := mk()
	if err := c.Restore(base, []RoundSnapshot{{Round: 0, Prices: []int{2, 2}, Spent: 10}}); err != nil {
		t.Fatalf("valid restore: %v", err)
	}
	if err := c.Restore(base, nil); err == nil {
		t.Fatal("second Restore must fail")
	}
}

// TestSuspendParksResumably pins the graceful-restart path: a campaign
// canceled with the ErrSuspended cause settles non-terminally, journals
// no terminal record, and a campaign restored from its checkpoint
// finishes exactly like the uninterrupted run.
func TestSuspendParksResumably(t *testing.T) {
	cfg := twoGroup(41)
	cfg.Drift = Drift{Kind: DriftRate, Factor: 0.9}
	cfg.Epsilon = 0

	refRes, err := Run(context.Background(), nil, cfg)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	j := &recJournal{}
	c, err := New(nil, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.SetJournal(j, "s")
	ctx, cancel := context.WithCancelCause(context.Background())
	// A per-round gate would over-fit the loop's internals; canceling
	// after the second journaled round is enough to land mid-run.
	roundSeen := make(chan struct{}, 16)
	go func() {
		<-roundSeen
		<-roundSeen
		cancel(ErrSuspended)
	}()
	gate := &gateJournal{inner: j, seen: roundSeen}
	c.SetJournal(gate, "s")
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("suspended run: %v", err)
	}
	if res.Status != StatusSuspended || res.Status.Terminal() {
		t.Fatalf("status %s, want non-terminal suspended; reason %q", res.Status, res.Reason)
	}
	if len(j.finished) != 0 {
		t.Fatalf("suspend journaled a terminal record: %+v", j.finished)
	}
	if res.RoundsRun >= refRes.RoundsRun {
		t.Fatalf("suspend landed after the run finished (%d rounds); nothing left to resume", res.RoundsRun)
	}
	// Resume from the suspended campaign's own checkpoint.
	last := j.rounds[len(j.rounds)-1]
	chk := c.Checkpoint()
	c2, err := New(nil, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c2.Restore(chk, last.ring); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	res2, err := c2.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got, want := asJSON(t, res2), asJSON(t, refRes); got != want {
		t.Fatalf("suspend+resume diverged from the uninterrupted run\n got  %s\n want %s", got, want)
	}
}

// gateJournal forwards to inner and signals each round.
type gateJournal struct {
	inner Journal
	seen  chan struct{}
}

func (g *gateJournal) Round(id string, snap RoundSnapshot, chk Checkpoint) {
	g.inner.Round(id, snap, chk)
	select {
	case g.seen <- struct{}{}:
	default:
	}
}

func (g *gateJournal) Finished(id string, chk Checkpoint) { g.inner.Finished(id, chk) }

// TestManagerSuspendAndResume drives the manager-level halves: Suspend
// parks running campaigns without counting them finished, and Resume
// re-registers both terminal and resumable campaigns under their old
// ids.
func TestManagerSuspendAndResume(t *testing.T) {
	cfg := twoGroup(13)
	cfg.Drift = Drift{Kind: DriftRate, Factor: 0.9}
	cfg.Epsilon = 0
	cfg.MaxRounds = 64
	cfg.Budget = 64 * cfg.RoundBudget

	m := NewManager(nil, 4)
	id, err := m.Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	m.Suspend()
	res, ok := m.Get(id)
	if !ok {
		t.Fatalf("campaign %s vanished", id)
	}
	// The suspend raced the run: either it parked mid-way (suspended) or
	// the campaign legitimately finished first. Only the parked case is
	// interesting, and with 64 slow rounds it is the overwhelming one.
	if res.Status == StatusSuspended {
		if st := m.Stats(); st.Finished != 0 {
			t.Fatalf("suspended campaign counted as finished: %+v", st)
		}
	}
	if _, err := m.Start(cfg); err == nil {
		t.Fatal("suspended manager accepted a new start")
	}

	// A second manager resumes the parked campaign under its old id.
	m2 := NewManager(nil, 4)
	c2, err := New(nil, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	chk := Checkpoint{Name: cfg.Name, Status: StatusRunning, RoundsRun: res.RoundsRun, HistoryCap: DefaultHistoryCap,
		Spent: res.Spent, Remaining: cfg.Budget - res.Spent, TotalMakespan: res.TotalMakespan}
	if res.Status.Terminal() {
		chk.Status = res.Status
	}
	if err := c2.Restore(chk, res.Rounds); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := m2.Resume(id, c2); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := m2.Resume(id, c2); err == nil {
		t.Fatal("duplicate Resume must fail")
	}
	done, ok := m2.Done(id)
	if !ok {
		t.Fatalf("resumed campaign %s not tracked", id)
	}
	<-done
	got, _ := m2.Get(id)
	if !got.Status.Terminal() {
		t.Fatalf("resumed campaign settled as %s", got.Status)
	}
	// Fresh ids must not collide with the resumed one.
	nid, err := m2.Start(twoGroup(99))
	if err != nil {
		t.Fatalf("Start after resume: %v", err)
	}
	if nid == id {
		t.Fatalf("id %s reused", nid)
	}
}

// TestEvictionExportsFinalSnapshot is the regression test for the
// retention-eviction fix: before this PR, evicting a finished campaign
// silently destroyed the only copy of its round history; now the
// journal's Evicted hook receives the final checkpoint and the retained
// rounds first.
func TestEvictionExportsFinalSnapshot(t *testing.T) {
	m := NewManager(nil, 8)
	m.retain = 2
	j := &recJournal{}
	m.SetJournal(j)

	cfg := twoGroup(17)
	cfg.MaxRounds = 2
	cfg.Budget = 2 * cfg.RoundBudget
	var ids []string
	for i := 0; i < 3; i++ {
		cfg.Seed = uint64(50 + i)
		id, err := m.Start(cfg)
		if err != nil {
			t.Fatalf("Start %d: %v", i, err)
		}
		ids = append(ids, id)
		done, _ := m.Done(id)
		<-done
	}
	// All three finished; retention is 2 — the next start evicts the
	// oldest and must export it first.
	cfg.Seed = 99
	if _, err := m.Start(cfg); err != nil {
		t.Fatalf("triggering start: %v", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.evicted) == 0 {
		t.Fatal("eviction exported nothing")
	}
	first := j.evicted[0]
	if first.id != ids[0] {
		t.Fatalf("evicted %s first, want the oldest %s", first.id, ids[0])
	}
	if !first.chk.Status.Terminal() {
		t.Fatalf("evicted checkpoint not terminal: %+v", first.chk)
	}
	if len(first.rounds) != first.chk.RoundsRun || len(first.rounds) == 0 {
		t.Fatalf("evicted export lost history: %d rounds exported, %d run", len(first.rounds), first.chk.RoundsRun)
	}
	want := ""
	for _, ev := range j.rounds {
		if ev.id == ids[0] {
			want = asJSON(t, ev.ring)
		}
	}
	if got := asJSON(t, first.rounds); got != want {
		t.Fatalf("evicted history differs from the journaled rounds\n got  %s\n want %s", got, want)
	}
	if m.Stats().Rounds == 0 {
		t.Fatal("evicted rounds fell out of the stats")
	}
	if _, still := m.Get(ids[0]); still {
		t.Fatal("evicted campaign still retained")
	}
}

// TestRunFleetUnchangedByJournal guards the passive-observer property:
// wiring a journal changes nothing about campaign results.
func TestRunFleetUnchangedByJournal(t *testing.T) {
	cfg := twoGroup(77)
	plain, err := Run(context.Background(), nil, cfg)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	c, err := New(nil, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.SetJournal(&recJournal{}, "x")
	journaled, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	if got, want := asJSON(t, journaled), asJSON(t, plain); got != want {
		t.Fatalf("journal changed the run\n got  %s\n want %s", got, want)
	}
}
