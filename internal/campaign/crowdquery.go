package campaign

import (
	"context"
	"fmt"
	"math"

	"hputune/internal/crowddb"
	"hputune/internal/deadline"
	"hputune/internal/htuning"
	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
	"hputune/internal/retainer"
)

// CrowdQuery configures the crowd-DB query executor: instead of raw
// market tasks, every round runs one full crowd query (a tournament
// top-k or a sequential-discovery group-by) whose atomic voting tasks
// are priced per difficulty bucket by the round's tuned allocation. The
// campaign's Groups are derived from the query's first parallel phase —
// one group per difficulty present, so the solver prices exactly the
// operator workload the executor runs — and the observed on-hold
// durations of every phase fold back into the campaign's fit.
type CrowdQuery struct {
	// Kind is the query operator: "topk" or "groupby".
	Kind string
	// Items is the synthesized dataset size (>= 2).
	Items int
	// K is the top-k cut (required for "topk", 1 <= K < Items).
	K int
	// Classes are the latent categories of a "groupby" dataset.
	Classes []string
	// Reps is the votes per atomic task; <= 0 means 3.
	Reps int
	// ValueLo and ValueHi bound the latent item values; both zero means
	// [1, 100].
	ValueLo, ValueHi int
	// DatasetSeed synthesizes the dataset (fixed across rounds: the
	// campaign re-runs the same query under re-tuned prices).
	DatasetSeed uint64
	// Accept is the marketplace's true base acceptance model, damped per
	// difficulty by the crowddb class set; hidden from the tuner.
	Accept pricing.RateModel
	// ProcRate is the base processing rate, damped per difficulty.
	ProcRate float64
}

// withDefaults returns q with documented defaults applied.
func (q CrowdQuery) withDefaults() CrowdQuery {
	if q.Reps <= 0 {
		q.Reps = 3
	}
	if q.ValueLo == 0 && q.ValueHi == 0 {
		q.ValueLo, q.ValueHi = 1, 100
	}
	return q
}

// validate reports whether the query (after defaults) is runnable.
func (q CrowdQuery) validate() error {
	switch q.Kind {
	case "topk":
		if q.K < 1 || q.K >= q.Items {
			return fmt.Errorf("campaign: top-k query needs 1 <= k < items, got k=%d items=%d", q.K, q.Items)
		}
	case "groupby":
		if len(q.Classes) == 0 {
			return fmt.Errorf("campaign: group-by query needs at least one class")
		}
	default:
		return fmt.Errorf("campaign: unknown query kind %q (want \"topk\" or \"groupby\")", q.Kind)
	}
	if q.Items < 2 {
		return fmt.Errorf("campaign: query needs >= 2 items, got %d", q.Items)
	}
	if q.ValueLo > q.ValueHi {
		return fmt.Errorf("campaign: query value range [%d, %d] is empty", q.ValueLo, q.ValueHi)
	}
	if q.Accept == nil {
		return fmt.Errorf("campaign: query has no true acceptance model")
	}
	if !(q.ProcRate > 0) {
		return fmt.Errorf("campaign: query processing rate %v must be positive", q.ProcRate)
	}
	return nil
}

// DeadlineSLO imposes a latency SLO on a campaign: before every round is
// solved, the [29] comparator (deadline.MinCostForDeadlines) checks that
// the SLO is attainable at all under the current belief — if no price up
// to the scan ceiling meets it, the campaign terminates as
// StatusSLOInfeasible instead of spending a round that cannot succeed.
// The comparator's cost and the realized violation ride every round
// snapshot, so the paper's baseline comparison falls out of the log.
type DeadlineSLO struct {
	// Makespan is the per-round latency SLO, in model clock units.
	Makespan float64
	// Confidence is the per-task acceptance probability the admission
	// check demands within the SLO; 0 means 0.9.
	Confidence float64
	// MaxPrice is the admission check's price-scan ceiling; 0 means 64.
	MaxPrice int
}

func (s DeadlineSLO) confidence() float64 {
	if s.Confidence == 0 {
		return 0.9
	}
	return s.Confidence
}

func (s DeadlineSLO) maxPrice() int {
	if s.MaxPrice == 0 {
		return 64
	}
	return s.MaxPrice
}

// validate reports whether the SLO (after defaults) is well formed.
func (s DeadlineSLO) validate() error {
	if !(s.Makespan > 0) || math.IsInf(s.Makespan, 0) {
		return fmt.Errorf("campaign: deadline SLO makespan %v must be positive and finite", s.Makespan)
	}
	if c := s.confidence(); !(c > 0 && c < 1) {
		return fmt.Errorf("campaign: deadline SLO confidence %v outside (0, 1)", c)
	}
	if s.maxPrice() < 1 {
		return fmt.Errorf("campaign: deadline SLO max price %d below 1", s.MaxPrice)
	}
	return nil
}

// RetainerPool routes a slice of each round's repetitions through a
// pre-paid standby pool (the Bernstein-style retainer model of package
// retainer): retained repetitions skip the on-hold phase entirely, which
// shifts the observed duration distribution the fit guard must survive,
// and the pool's fee — Workers × Fee × round makespan, rounded up —
// is charged against the campaign budget on top of task payments.
type RetainerPool struct {
	// Workers is the standby pool size, c >= 1.
	Workers int
	// ServiceRate is each retained worker's completion rate (> 0).
	ServiceRate float64
	// Fee is the retainer payment per worker per unit time (>= 0).
	Fee float64
	// Share is the fraction of repetitions served from the pool,
	// in (0, 1].
	Share float64
}

// validate reports whether the pool is usable.
func (p RetainerPool) validate() error {
	pool := retainer.Pool{Workers: p.Workers, ServiceRate: p.ServiceRate, Fee: p.Fee}
	if err := pool.Validate(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if !(p.Share > 0 && p.Share <= 1) {
		return fmt.Errorf("campaign: retainer share %v outside (0, 1]", p.Share)
	}
	return nil
}

// QueryInfo records one round's crowd-query outcome in its snapshot.
// All floats are finite, so snapshots keep round-tripping through JSON
// bit-exactly.
type QueryInfo struct {
	// Kind is the executed operator ("topk" or "groupby").
	Kind string `json:"kind"`
	// Phases is how many sequential marketplace phases the query ran.
	Phases int `json:"phases"`
	// Tasks counts the atomic voting tasks decided across phases.
	Tasks int `json:"tasks"`
	// Paid is the crowd payment across phases (excluding retainer fees).
	Paid int `json:"paid"`
	// Accuracy is the fraction of decisions matching ground truth.
	Accuracy float64 `json:"accuracy"`
	// Quality is the operator's result quality: top-k precision against
	// the true top-k, or the Rand index of the recovered clustering.
	Quality float64 `json:"quality"`
}

// SLOInfo records one round's deadline-SLO accounting in its snapshot.
type SLOInfo struct {
	// Deadline is the configured per-round latency SLO.
	Deadline float64 `json:"deadline"`
	// ComparatorCost is what the [29] baseline would pay to meet the SLO
	// for the round's workload under the belief the round was priced with.
	ComparatorCost int `json:"comparatorCost"`
	// Violated reports whether the realized makespan missed the SLO.
	Violated bool `json:"violated"`
}

// RetainerInfo records one round's retainer-pool accounting in its
// snapshot.
type RetainerInfo struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Retained is how many repetitions the pool served (zero on-hold).
	Retained int `json:"retained"`
	// Fee is the pre-paid pool fee charged this round.
	Fee int `json:"fee"`
}

// retainerSalt decorrelates the retainer's pool-assignment stream from
// the round's market randomness (both derive from the round seed).
const retainerSalt = 0x9e3779b97f4a7c15

// retainerApply serves share of the records from the standby pool:
// selected repetitions lose their on-hold phase (accepted the instant
// they were posted, done earlier by the saved hold) and the phase
// makespan is recomputed from the shifted completion times. Records
// arrive in acceptance order, so the Bernoulli stream is deterministic
// in (records, rng).
func retainerApply(recs []market.RepRecord, share float64, rng *randx.Rand) (retained int, makespan float64) {
	for i := range recs {
		r := &recs[i]
		if rng.Float64() < share {
			hold := r.Accepted - r.PostedAt
			if hold > 0 {
				r.Accepted = r.PostedAt
				r.Done -= hold
			}
			retained++
		}
		if r.Done > makespan {
			makespan = r.Done
		}
	}
	return retained, makespan
}

// retainerFee is the pool's pre-paid charge for holding Workers standby
// workers over the round's makespan, rounded up to whole budget units.
func retainerFee(p RetainerPool, makespan float64) int {
	return int(math.Ceil(float64(p.Workers) * p.Fee * makespan))
}

// retainerExecutor wraps another executor with the retainer transform —
// the path market campaigns take (the crowd executor applies the same
// transform per phase itself, so multi-phase makespans stay correct).
type retainerExecutor struct {
	inner Executor
	pool  RetainerPool
}

func (e *retainerExecutor) Execute(ctx context.Context, round int, p htuning.Problem, a htuning.Allocation, seed uint64) (Observation, error) {
	obs, err := e.inner.Execute(ctx, round, p, a, seed)
	if err != nil {
		return obs, err
	}
	rng := randx.New(seed ^ retainerSalt)
	retained, span := retainerApply(obs.Records, e.pool.Share, rng)
	obs.Makespan = span
	fee := retainerFee(e.pool, span)
	spent := a.Cost() + fee
	obs.Spent = &spent
	obs.Retainer = &RetainerInfo{Workers: e.pool.Workers, Retained: retained, Fee: fee}
	return obs, nil
}

// crowdExecutor executes rounds as full crowd-DB queries. It is
// stateless across rounds — the dataset, class set and group shape are
// fixed at construction and every Execute is a pure function of
// (round allocation, seed) — which is what lets a recovery rebuild it
// from the verbatim-persisted spec and resume bit-identically.
type crowdExecutor struct {
	q       CrowdQuery
	items   crowddb.Dataset
	classes *crowddb.ClassSet
	// diffs maps each derived group index to its difficulty bucket; the
	// allocation's per-group prices become the query's price policy.
	diffs []crowddb.Difficulty
	// truth is the ground-truth top-k id set ("topk" only).
	truth []string
	// pool, when set, applies the retainer transform per phase.
	pool *RetainerPool
}

// newCrowdExecutor synthesizes the query dataset and derives the
// campaign's groups from the query's first parallel phase: one group per
// difficulty bucket present, sized by that bucket's task count. The
// derived classes carry difficulty-damped processing rates, so crowd
// campaigns route to the heterogeneous solver.
func newCrowdExecutor(cfg Config) (*crowdExecutor, []Group, error) {
	q := cfg.Query.withDefaults()
	if err := q.validate(); err != nil {
		return nil, nil, err
	}
	classes, err := crowddb.DefaultClassSet(q.Accept, q.ProcRate)
	if err != nil {
		return nil, nil, err
	}
	r := randx.New(q.DatasetSeed)
	var items crowddb.Dataset
	if q.Kind == "groupby" {
		items, err = crowddb.CategorizedItems(q.Items, q.Classes, q.ValueLo, q.ValueHi, r)
	} else {
		items, err = crowddb.DotImages(q.Items, q.ValueLo, q.ValueHi, r)
	}
	if err != nil {
		return nil, nil, err
	}
	var plan crowddb.Plan
	switch q.Kind {
	case "topk":
		const podSize = 4
		cut := 2 * q.K
		if cut < podSize {
			cut = podSize
		}
		size := podSize
		if len(items) <= cut {
			// The query goes straight to its final full-pairwise round.
			size = len(items)
		}
		plan, _, err = crowddb.PlanTopKRound(items, 0, q.Reps, size)
	case "groupby":
		plan, err = crowddb.PlanGroupByPhase(items[1:], crowddb.Dataset{items[0]}, 0, q.Reps)
	}
	if err != nil {
		return nil, nil, err
	}
	counts := make(map[crowddb.Difficulty]int, 3)
	for _, t := range plan.Tasks {
		counts[t.Diff]++
	}
	var groups []Group
	var diffs []crowddb.Difficulty
	for _, d := range []crowddb.Difficulty{crowddb.Easy, crowddb.Medium, crowddb.Hard} {
		n := counts[d]
		if n == 0 {
			continue
		}
		class, err := classes.Class(d)
		if err != nil {
			return nil, nil, err
		}
		groups = append(groups, Group{Name: d.String(), Tasks: n, Reps: q.Reps, Class: class})
		diffs = append(diffs, d)
	}
	e := &crowdExecutor{
		q:       q,
		items:   items,
		classes: classes,
		diffs:   diffs,
		pool:    cfg.Retainer,
	}
	if q.Kind == "topk" {
		e.truth = items.ByValue().IDs()[:q.K]
	}
	return e, groups, nil
}

// Execute runs the full query under the round's tuned per-difficulty
// prices: every sequential phase is a marketplace run seeded from the
// round seed, all phase records flow back for the re-fit, the realized
// makespan accumulates across phases, and the query's actual payment
// (plus any retainer fee) overrides the solver's believed first-phase
// cost in the budget accounting.
func (e *crowdExecutor) Execute(ctx context.Context, round int, p htuning.Problem, a htuning.Allocation, seed uint64) (Observation, error) {
	if err := ctx.Err(); err != nil {
		return Observation{}, err
	}
	prices := make(map[crowddb.Difficulty]int, len(e.diffs))
	for gi, d := range e.diffs {
		price, ok := a.GroupPrice(gi)
		if !ok {
			return Observation{}, fmt.Errorf("campaign: allocation has no group %d (difficulty %v)", gi, d)
		}
		prices[d] = price
	}
	policy := crowddb.PriceByDifficulty(prices)
	exec := &crowddb.Executor{Classes: e.classes, Config: market.Config{Seed: seed}}

	var phases []crowddb.PhaseOutcome
	info := QueryInfo{Kind: e.q.Kind}
	switch e.q.Kind {
	case "topk":
		res, err := exec.RunTopK(e.items, e.q.K, e.q.Reps, policy)
		if err != nil {
			return Observation{}, err
		}
		phases = res.Rounds
		precision, _ := crowddb.FilterQuality(res.TopK, e.truth)
		info.Quality = precision
	case "groupby":
		res, err := exec.RunGroupBy(e.items, e.q.Reps, policy)
		if err != nil {
			return Observation{}, err
		}
		phases = res.Phases
		ri, err := crowddb.RandIndex(res.Clusters, e.items)
		if err != nil {
			return Observation{}, err
		}
		info.Quality = ri
	}
	if err := ctx.Err(); err != nil {
		return Observation{}, err
	}

	var rng *randx.Rand
	var ret RetainerInfo
	if e.pool != nil {
		rng = randx.New(seed ^ retainerSalt)
		ret.Workers = e.pool.Workers
	}
	var obs Observation
	correct, decisions := 0, 0
	for _, ph := range phases {
		if rng != nil {
			n, span := retainerApply(ph.Records, e.pool.Share, rng)
			ret.Retained += n
			obs.Makespan += span
		} else {
			obs.Makespan += ph.Makespan
		}
		obs.Records = append(obs.Records, ph.Records...)
		info.Paid += ph.Paid
		info.Tasks += len(ph.Decisions)
		for _, d := range ph.Decisions {
			decisions++
			if d.Correct() {
				correct++
			}
		}
	}
	info.Phases = len(phases)
	if decisions > 0 {
		info.Accuracy = float64(correct) / float64(decisions)
	}
	spent := info.Paid
	if e.pool != nil {
		ret.Fee = retainerFee(*e.pool, obs.Makespan)
		spent += ret.Fee
		obs.Retainer = &ret
	}
	obs.Spent = &spent
	obs.Query = &info
	return obs, nil
}

// deadlineAdmission runs the [29] comparator as the round's SLO
// admission check: under the belief the round is about to be priced
// with, find the cheapest per-group price meeting the SLO — an error
// means no price up to the scan ceiling does, and the campaign stops as
// StatusSLOInfeasible rather than spend a round that cannot meet it.
func (c *Campaign) deadlineAdmission(belief pricing.RateModel) (*SLOInfo, error) {
	slo := c.cfg.Deadline
	types := make([]htuning.TaskType, len(c.cfg.Groups))
	tasks := make([]deadline.Task, len(c.cfg.Groups))
	for i, g := range c.cfg.Groups {
		types[i] = htuning.TaskType{Name: g.Name, Accept: belief, ProcRate: g.Class.ProcRate}
		tasks[i] = deadline.Task{Type: &types[i], Deadline: slo.Makespan}
	}
	res, err := deadline.MinCostForDeadlines(tasks, slo.confidence(), slo.maxPrice())
	if err != nil {
		return nil, err
	}
	cost := 0
	for i, g := range c.cfg.Groups {
		// [29] posts every repetition in parallel at the per-task price.
		cost += res.Prices[i] * g.Tasks * g.Reps
	}
	return &SLOInfo{Deadline: slo.Makespan, ComparatorCost: cost}, nil
}
