package campaign

import (
	"strings"
	"testing"
	"time"
)

// waitDone blocks until the campaign settles, with a test deadline.
func waitDone(t *testing.T, m *Manager, id string) Result {
	t.Helper()
	done, ok := m.Done(id)
	if !ok {
		t.Fatalf("unknown campaign %q", id)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign %q did not settle", id)
	}
	res, ok := m.Get(id)
	if !ok {
		t.Fatalf("campaign %q vanished", id)
	}
	return res
}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager(nil, 8)
	ids, err := m.StartAll([]Config{twoGroup(7), twoGroup(8)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] == ids[1] {
		t.Fatalf("ids %v", ids)
	}
	for _, id := range ids {
		res := waitDone(t, m, id)
		if res.Status != StatusConverged {
			t.Fatalf("%s: status %s (%q)", id, res.Status, res.Reason)
		}
	}
	rows := m.List()
	if len(rows) != 2 || rows[0].ID != ids[0] || rows[1].ID != ids[1] {
		t.Fatalf("list %+v, want both campaigns in start order", rows)
	}
	st := m.Stats()
	if st.Started != 2 || st.Finished != 2 || st.Active != 0 || st.Canceled != 0 {
		t.Fatalf("stats %+v", st)
	}
	if want := uint64(rows[0].RoundsRun + rows[1].RoundsRun); st.Rounds != want || want == 0 {
		t.Fatalf("stats rounds %d, want %d", st.Rounds, want)
	}
	// The manager result must equal a direct run of the same config —
	// the CLI-vs-service parity contract at the library level.
	direct, err := RunFleet(t.Context(), nil, []Config{twoGroup(7)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.Get(ids[0])
	if got.Spent != direct[0].Spent || got.RoundsRun != direct[0].RoundsRun {
		t.Fatalf("managed run diverged from direct run:\n%+v\n%+v", got, direct[0])
	}
	for i, r := range direct[0].Rounds {
		if !samePrices(r.Prices, got.Rounds[i].Prices) {
			t.Fatalf("round %d prices %v != direct %v", i, got.Rounds[i].Prices, r.Prices)
		}
	}
}

func TestManagerCancel(t *testing.T) {
	m := NewManager(nil, 2)
	exec := &blockingExecutor{entered: make(chan int, 1)}
	cfg := twoGroup(3)
	cfg.Executor = exec
	id, err := m.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	<-exec.entered // round 0 in flight
	if _, ok := m.Cancel(id); !ok {
		t.Fatal("cancel of a live campaign failed")
	}
	res := waitDone(t, m, id)
	if res.Status != StatusCanceled || res.RoundsRun != 0 {
		t.Fatalf("status %s after %d rounds, want canceled/0", res.Status, res.RoundsRun)
	}
	if st := m.Stats(); st.Canceled != 1 {
		t.Fatalf("stats %+v, want 1 canceled", st)
	}
	if _, ok := m.Cancel("nope"); ok {
		t.Fatal("cancel of an unknown id succeeded")
	}
	if _, ok := m.Get("nope"); ok {
		t.Fatal("get of an unknown id succeeded")
	}
}

func TestManagerCapacityAndAtomicStart(t *testing.T) {
	m := NewManager(nil, 1)
	exec := &blockingExecutor{entered: make(chan int, 1)}
	cfg := twoGroup(3)
	cfg.Executor = exec
	id, err := m.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	<-exec.entered
	// At capacity: the whole fleet is rejected, nothing starts.
	if _, err := m.StartAll([]Config{twoGroup(4)}); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("start at capacity: %v, want ErrCapacity", err)
	}
	if st := m.Stats(); st.Started != 1 {
		t.Fatalf("rejected start leaked into stats: %+v", st)
	}
	// An invalid config anywhere rejects the fleet before admission.
	bad := twoGroup(5)
	bad.Prior = nil
	if _, err := m.StartAll([]Config{twoGroup(4), bad}); err == nil || !strings.Contains(err.Error(), "campaign 1") {
		t.Fatalf("invalid fleet: %v, want a campaign-1 validation error", err)
	}
	m.Cancel(id)
	waitDone(t, m, id)
	// Slot freed: starts work again, until Close.
	id2, err := m.Start(twoGroup(6))
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if res, _ := m.Get(id2); !res.Status.Terminal() {
		t.Fatalf("Close returned with %s campaign", res.Status)
	}
	if _, err := m.Start(twoGroup(7)); err == nil {
		t.Fatal("start after Close succeeded")
	}
}
