package campaign

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"hputune/internal/htuning"
	"hputune/internal/market"
	"hputune/internal/pricing"
)

// linClass builds a true marketplace class with a linear accept model.
func linClass(name string, k, b, proc float64) *market.TaskClass {
	return &market.TaskClass{Name: name, Accept: pricing.Linear{K: k, B: b}, ProcRate: proc, Accuracy: 1}
}

// twoGroup is the canonical Scenario II campaign: same difficulty, two
// repetition requirements, true model 2p+0.5 under the mistuned prior
// p+1. RA prices the groups differently, so every round observes two
// price levels and the fit re-publishes each round.
func twoGroup(seed uint64) Config {
	return Config{
		Name: "two-group",
		Groups: []Group{
			{Name: "g3", Tasks: 50, Reps: 3, Class: linClass("t", 2, 0.5, 2)},
			{Name: "g5", Tasks: 50, Reps: 5, Class: linClass("t", 2, 0.5, 2)},
		},
		Prior:       pricing.Linear{K: 1, B: 1},
		RoundBudget: 1000,
		Budget:      12000,
		MaxRounds:   12,
		Epsilon:     0.05,
		Seed:        seed,
	}
}

func TestStationaryConvergence(t *testing.T) {
	heter := twoGroup(11)
	heter.Name = "heter"
	heter.Groups[1].Class = linClass("t", 2, 0.5, 3)

	homo := Config{
		Name:        "homo",
		Groups:      []Group{{Name: "g", Tasks: 100, Reps: 5, Class: linClass("t", 2, 0.5, 2)}},
		Prior:       pricing.Linear{K: 1, B: 1},
		RoundBudget: 1000,
		MaxRounds:   8,
		Epsilon:     0.05,
		Seed:        3,
	}

	cases := []struct {
		name string
		cfg  Config
		algo string
		// wantFit asserts the final belief landed near the true slope 2
		// (impossible for homo: one price level never yields a fit).
		wantFit bool
	}{
		{"repetition-ra", twoGroup(7), "ra", true},
		{"heterogeneous-ha", heter, "ha", true},
		{"homogeneous-fixed-point", homo, "ra", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), nil, tc.cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Status != StatusConverged || !res.Converged {
				t.Fatalf("status %s (converged=%v), want %s; reason %q", res.Status, res.Converged, StatusConverged, res.Reason)
			}
			// Convergence needs at least a repeated allocation and must
			// beat the deadline (the whole point of re-tuning).
			if res.RoundsRun < 2 || res.RoundsRun >= tc.cfg.MaxRounds {
				t.Fatalf("converged after %d rounds, want within [2, %d)", res.RoundsRun, tc.cfg.MaxRounds)
			}
			if got := res.Rounds[0].Algorithm; got != tc.algo {
				t.Fatalf("algorithm %q, want %q", got, tc.algo)
			}
			cfg := tc.cfg.withDefaults()
			if res.Spent+res.Remaining != cfg.Budget {
				t.Fatalf("spent %d + remaining %d != budget %d", res.Spent, res.Remaining, cfg.Budget)
			}
			if len(res.Rounds) != res.RoundsRun || res.DroppedRounds != 0 {
				t.Fatalf("history: %d snapshots, %d dropped, %d rounds run", len(res.Rounds), res.DroppedRounds, res.RoundsRun)
			}
			if tc.wantFit {
				if res.Fit == nil {
					t.Fatal("no final fit published")
				}
				if res.Fit.Slope < 1.4 || res.Fit.Slope > 2.6 {
					t.Fatalf("final slope %.3f implausibly far from the true 2.0", res.Fit.Slope)
				}
			} else if res.Fit != nil {
				t.Fatalf("single price level cannot produce a fit, got %+v", res.Fit)
			}
		})
	}
}

// TestConvergenceRejectsFirstFit pins that a first-ever fit never counts
// as a stable belief, even when the allocation repeats: the campaign
// must run at least one more round priced on the new belief.
func TestConvergenceRejectsFirstFit(t *testing.T) {
	res, err := Run(context.Background(), nil, twoGroup(7))
	if err != nil {
		t.Fatal(err)
	}
	first := res.Rounds[0]
	if first.Fit == nil {
		t.Fatalf("round 0 published no fit: %q", first.FitPending)
	}
	if res.RoundsRun < 3 {
		t.Fatalf("converged after %d rounds; a first fit in round 0 cannot converge before round 2", res.RoundsRun)
	}
}

func TestDriftStopsAtBudgetExhaustion(t *testing.T) {
	cfg := twoGroup(5)
	cfg.Name = "rate-drift"
	cfg.Budget = 3500
	cfg.MaxRounds = 1000
	cfg.Epsilon = 0 // a moving fit never counts as stable
	cfg.Drift = Drift{Kind: DriftRate, Factor: 0.8}
	res, err := Run(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusBudgetExhausted {
		t.Fatalf("status %s, want %s; reason %q", res.Status, StatusBudgetExhausted, res.Reason)
	}
	// Every round spends at least one unit per repetition (400 here), so
	// exhaustion is guaranteed within budget/minRoundCost rounds.
	if max := cfg.Budget / cfg.minRoundCost(); res.RoundsRun > max {
		t.Fatalf("%d rounds on a %d budget (min %d/round)", res.RoundsRun, cfg.Budget, cfg.minRoundCost())
	}
	if res.Remaining >= cfg.minRoundCost() {
		t.Fatalf("stopped with %d remaining, enough for another round (min %d)", res.Remaining, cfg.minRoundCost())
	}
	if res.Converged {
		t.Fatal("drifting campaign reported convergence")
	}
}

func TestDeadlineStopsAtMaxRounds(t *testing.T) {
	cfg := twoGroup(9)
	cfg.MaxRounds = 3
	cfg.Budget = 0 // default MaxRounds × RoundBudget
	cfg.Epsilon = 0
	res, err := Run(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusMaxRounds || res.RoundsRun != 3 {
		t.Fatalf("status %s after %d rounds, want %s after 3 (reason %q)", res.Status, res.RoundsRun, StatusMaxRounds, res.Reason)
	}
}

func TestHistoryBounded(t *testing.T) {
	cfg := twoGroup(21)
	cfg.MaxRounds = 5
	cfg.Epsilon = 0
	cfg.HistoryCap = 2
	res, err := Run(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsRun != 5 || len(res.Rounds) != 2 || res.DroppedRounds != 3 {
		t.Fatalf("rounds run %d, retained %d, dropped %d; want 5/2/3", res.RoundsRun, len(res.Rounds), res.DroppedRounds)
	}
	if res.Rounds[0].Round != 3 || res.Rounds[1].Round != 4 {
		t.Fatalf("retained rounds %d,%d; want the newest (3,4)", res.Rounds[0].Round, res.Rounds[1].Round)
	}
}

// TestDeterminism pins the core contract: a campaign is a pure function
// of (Config, Seed), and a fleet of campaigns returns identical results
// for any worker count and regardless of estimator sharing.
func TestDeterminism(t *testing.T) {
	cfgs := []Config{twoGroup(7), twoGroup(8)}
	heter := twoGroup(11)
	heter.Name = "heter"
	heter.Groups[1].Class = linClass("t", 2, 0.5, 3)
	drift := twoGroup(5)
	drift.Name = "drift"
	drift.Epsilon = 0
	drift.Budget = 3500
	drift.Drift = Drift{Kind: DriftRate, Factor: 0.8}
	cfgs = append(cfgs, heter, drift)

	serial, err := RunFleet(context.Background(), htuning.NewEstimator(), cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunFleet(context.Background(), htuning.NewEstimator(), cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("fleet results differ between 1 and 8 workers:\n%+v\n%+v", serial, wide)
	}
	// A warm shared estimator must not change results either.
	est := htuning.NewEstimator()
	warm1, err := RunFleet(context.Background(), est, cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := RunFleet(context.Background(), est, cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm1, serial) || !reflect.DeepEqual(warm2, serial) {
		t.Fatal("results changed with a warm shared estimator")
	}
}

// stubObservation fabricates completed records at two price levels whose
// MLE rates fit the line λo(c) = c exactly.
func stubObservation(n int) Observation {
	var recs []market.RepRecord
	for i := 0; i < n; i++ {
		recs = append(recs,
			market.RepRecord{TaskID: "a", Price: 2, PostedAt: 0, Accepted: 0.5, Done: 1},
			market.RepRecord{TaskID: "b", Price: 3, PostedAt: 0, Accepted: 1.0 / 3, Done: 1},
		)
	}
	return Observation{Records: recs, Makespan: 1}
}

// cancelingExecutor executes round cancelAt normally but cancels the
// campaign's context right before returning — the "cancel landed while
// the round's results were in flight" window.
type cancelingExecutor struct {
	cancelAt int
	cancel   context.CancelFunc
}

func (e *cancelingExecutor) Execute(ctx context.Context, round int, p htuning.Problem, a htuning.Allocation, seed uint64) (Observation, error) {
	if round == e.cancelAt {
		e.cancel()
	}
	return stubObservation(10), nil
}

// TestCancelMidRoundLeavesFitUntouched pins the cancellation contract: a
// round whose execution was interrupted by cancel publishes nothing —
// the belief stays exactly as the last completed round left it.
func TestCancelMidRoundLeavesFitUntouched(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := twoGroup(1)
	cfg.Epsilon = 0
	cfg.MaxRounds = 10
	cfg.Executor = &cancelingExecutor{cancelAt: 1, cancel: cancel}
	c, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("cancel must not be an error: %v", err)
	}
	if res.Status != StatusCanceled || !strings.Contains(res.Reason, "round 1") {
		t.Fatalf("status %s (%q), want %s during round 1", res.Status, res.Reason, StatusCanceled)
	}
	if res.RoundsRun != 1 || len(res.Rounds) != 1 {
		t.Fatalf("rounds run %d (retained %d), want exactly the 1 completed round", res.RoundsRun, len(res.Rounds))
	}
	round0 := res.Rounds[0].Fit
	if round0 == nil {
		t.Fatal("round 0 should have published a fit")
	}
	if res.Fit == nil || *res.Fit != *round0 {
		t.Fatalf("published fit %+v changed after cancel; want round 0's %+v untouched", res.Fit, round0)
	}
	// The stub rates fit λo(c) = c exactly; the canceled round must not
	// have folded its records (they would keep the same exact fit here,
	// so also check the aggregate count).
	if n := c.aggs[2].N; n != 10 {
		t.Fatalf("aggregates hold %d records at price 2; the canceled round must not fold (want 10)", n)
	}
}

// blockingExecutor parks in Execute until the context is canceled.
type blockingExecutor struct {
	entered chan int
}

func (e *blockingExecutor) Execute(ctx context.Context, round int, p htuning.Problem, a htuning.Allocation, seed uint64) (Observation, error) {
	e.entered <- round
	<-ctx.Done()
	return Observation{}, ctx.Err()
}

func TestCancelWhileExecutorBlocks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	exec := &blockingExecutor{entered: make(chan int)}
	cfg := twoGroup(1)
	cfg.Executor = exec
	c, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Result, 1)
	go func() {
		res, _ := c.Run(ctx)
		done <- res
	}()
	if round := <-exec.entered; round != 0 {
		t.Fatalf("first executed round %d, want 0", round)
	}
	if snap := c.Snapshot(); snap.Status != StatusRunning {
		t.Fatalf("mid-round status %s, want %s", snap.Status, StatusRunning)
	}
	cancel()
	res := <-done
	if res.Status != StatusCanceled || res.RoundsRun != 0 || res.Fit != nil {
		t.Fatalf("got status %s, %d rounds, fit %+v; want canceled before any round completed", res.Status, res.RoundsRun, res.Fit)
	}
}

func TestConfigValidation(t *testing.T) {
	valid := twoGroup(1)
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no groups", func(c *Config) { c.Groups = nil }, "no groups"},
		{"zero tasks", func(c *Config) { c.Groups[0].Tasks = 0 }, "tasks"},
		{"nil class", func(c *Config) { c.Groups[0].Class = nil }, "class"},
		{"nil prior", func(c *Config) { c.Prior = nil }, "prior"},
		{"round budget too small", func(c *Config) { c.RoundBudget = 399 }, "budget"},
		{"total below round", func(c *Config) { c.Budget = 500 }, "total budget"},
		{"negative epsilon", func(c *Config) { c.Epsilon = -0.1 }, "epsilon"},
		{"worker choice without arrival", func(c *Config) { c.Market.WorkerChoice = true }, "arrival"},
		{"unknown drift", func(c *Config) { c.Drift = Drift{Kind: "melt"} }, "drift"},
		{"drift factor", func(c *Config) { c.Drift = Drift{Kind: DriftRate, Factor: 0} }, "factor"},
		{"shock round", func(c *Config) { c.Drift = Drift{Kind: DriftShock, Factor: 0.5, Round: -1} }, "round"},
		{"shrink without workers", func(c *Config) { c.Drift = Drift{Kind: DriftShrink, Factor: 0.9} }, "worker-choice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			cfg.Groups = append([]Group(nil), valid.Groups...)
			tc.mut(&cfg)
			if _, err := New(nil, cfg); err == nil {
				t.Fatal("invalid config accepted")
			} else if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRunTwiceRejected(t *testing.T) {
	c, err := New(nil, twoGroup(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("second Run on the same campaign must be rejected")
	}
}

func TestWorkerChoiceGuardHoldsContractViolatingFit(t *testing.T) {
	cfg := twoGroup(13)
	cfg.Name = "shrink"
	cfg.Market = MarketOptions{WorkerChoice: true, ArrivalRate: 12}
	cfg.Drift = Drift{Kind: DriftShrink, Factor: 0.85}
	res, err := Run(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Competition decouples acceptance from price, so the per-price MLE
	// violates the linearity contract; every round must hold the fit
	// pending rather than hand the solvers a decreasing rate model.
	for _, r := range res.Rounds {
		if r.Fit != nil {
			t.Fatalf("round %d published %+v under worker-choice competition", r.Round, r.Fit)
		}
		if r.FitPending == "" {
			t.Fatalf("round %d has no pending explanation", r.Round)
		}
	}
	if !res.Status.Terminal() {
		t.Fatalf("status %s not terminal", res.Status)
	}
}
