// Package campaign closes the paper's loop at system scale: tune → post →
// observe → re-tune, per job, until the job's budget runs out, the fitted
// model stops moving, or a round deadline passes. It is the orchestrator
// the rest of the repository plugs into — the solvers of package htuning
// pick each round's prices, an Executor (the market simulator by default,
// any real backend behind the same interface) runs the round, and the
// observed completion traces are folded through inference.FitAggregates
// into a re-fitted price→rate model that the next round solves against.
//
// One Campaign is one closed loop. Fleets of campaigns run concurrently
// over the engine worker pool (RunFleet) or under a Manager (the htuned
// service's /v1/campaigns endpoints). Every campaign is deterministic:
// its per-round allocations are a pure function of (Config, Seed) —
// independent of fleet concurrency, of the shared estimator's cache
// state, and of whether the CLI or the HTTP service drives it — because
// round seeds derive only from the campaign seed and the solvers and
// simulator are themselves deterministic.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"hputune/internal/htuning"
	"hputune/internal/inference"
	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
)

// Group is one set of identical tasks in a campaign: the workload shape
// the tuner sees, plus the marketplace's actual behaviour (unknown to
// the tuner, which only ever reads completed-trace timings).
type Group struct {
	// Name labels the group in task IDs and output.
	Name string
	// Tasks and Reps define the group's workload per round.
	Tasks int
	Reps  int
	// Class is the true marketplace behaviour of the group's tasks. The
	// tuner never reads Class.Accept — it prices rounds with the prior
	// until observed traces produce a fit. Class.ProcRate is visible to
	// the tuner (processing rates are measured offline in the paper).
	Class *market.TaskClass
}

// Config describes one campaign. RoundBudget, Groups and Prior are
// required; zero values elsewhere take the documented defaults.
type Config struct {
	// Name labels the campaign in results and listings.
	Name string
	// Groups is the per-round workload.
	Groups []Group
	// Prior is the initial belief about the price→rate curve, shared by
	// all groups until ingested traces replace it with a fit.
	Prior pricing.RateModel
	// RoundBudget is the payment budget each round may spend. It must
	// afford at least one unit per repetition of the round's workload.
	RoundBudget int
	// Budget bounds the whole campaign's spend; <= 0 means
	// MaxRounds × RoundBudget. The campaign stops with
	// StatusBudgetExhausted once the remainder cannot fund a round.
	Budget int
	// MaxRounds is the round deadline; <= 0 means 16.
	MaxRounds int
	// Epsilon is the convergence threshold on the relative change of the
	// published fit between consecutive rounds (see Converged in Result).
	// 0 demands an exactly unchanged belief.
	Epsilon float64
	// Seed drives every round's market randomness. Campaign results are
	// a pure function of (Config, Seed).
	Seed uint64
	// Market configures the executor's marketplace (mode, arrival rate,
	// abandonment). The zero value is the paper's independent-acceptance
	// model.
	Market MarketOptions
	// Drift perturbs the true market round over round — the zero value
	// is a stationary market.
	Drift Drift
	// HistoryCap bounds retained per-round snapshots (oldest dropped
	// first, drops counted); <= 0 means 64.
	HistoryCap int
	// Executor overrides the backend the allocations are executed
	// against; nil uses the market simulator over Groups, Market and
	// Drift (or the crowd-query executor when Query is set). Real
	// (non-simulated) backends implement this interface.
	Executor Executor
	// Query switches the campaign to the crowd-DB query executor: every
	// round runs one full top-k or group-by query priced by the round's
	// allocation. Groups must be empty — they are derived from the query
	// plan's difficulty buckets. Mutually exclusive with Executor.
	Query *CrowdQuery
	// Deadline imposes a per-round latency SLO checked before each solve
	// by the [29] comparator; inadmissible rounds terminate the campaign
	// as StatusSLOInfeasible.
	Deadline *DeadlineSLO
	// Retainer routes a slice of every round's repetitions through a
	// pre-paid standby pool, removing their on-hold phase and charging
	// the pool fee against the budget.
	Retainer *RetainerPool
}

// Defaults for Config zero values.
const (
	// DefaultMaxRounds is the round deadline when Config.MaxRounds <= 0.
	DefaultMaxRounds = 16
	// DefaultHistoryCap is the snapshot bound when Config.HistoryCap <= 0.
	DefaultHistoryCap = 64
)

// MarketOptions configures the default market executor.
type MarketOptions struct {
	// WorkerChoice switches the simulator to Poisson worker arrivals
	// choosing among open repetitions (competition between tasks).
	WorkerChoice bool
	// ArrivalRate is the worker arrival rate (required > 0 when
	// WorkerChoice is set).
	ArrivalRate float64
	// AbandonProb and AbandonRate inject workers who return accepted
	// repetitions unfinished (see market.Config).
	AbandonProb float64
	AbandonRate float64
	// MaxTime aborts a round whose simulated clock exceeds this horizon;
	// 0 means none.
	MaxTime float64
}

// config builds the market.Config of one round (before drift).
func (o MarketOptions) config() market.Config {
	cfg := market.Config{
		AbandonProb: o.AbandonProb,
		AbandonRate: o.AbandonRate,
		MaxTime:     o.MaxTime,
	}
	if o.WorkerChoice {
		cfg.Mode = market.ModeWorkerChoice
		cfg.ArrivalRate = o.ArrivalRate
	}
	return cfg
}

// withDefaults returns cfg with documented defaults applied.
func (cfg Config) withDefaults() Config {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = DefaultHistoryCap
	}
	if cfg.Budget <= 0 {
		cfg.Budget = cfg.MaxRounds * cfg.RoundBudget
	}
	return cfg
}

// minRoundCost is one unit per repetition of the round workload.
func (cfg Config) minRoundCost() int {
	total := 0
	for _, g := range cfg.Groups {
		total += g.Tasks * g.Reps
	}
	return total
}

// Validate reports whether the campaign (after defaults) is runnable.
func (cfg Config) Validate() error {
	if len(cfg.Groups) == 0 {
		return fmt.Errorf("campaign: no groups")
	}
	for i, g := range cfg.Groups {
		if g.Tasks < 1 || g.Reps < 1 {
			return fmt.Errorf("campaign: group %d (%s) has %d tasks × %d reps, need >= 1 each", i, g.Name, g.Tasks, g.Reps)
		}
		if err := g.Class.Validate(); err != nil {
			return fmt.Errorf("campaign: group %d (%s): %w", i, g.Name, err)
		}
	}
	if cfg.Prior == nil {
		return fmt.Errorf("campaign: nil prior rate model")
	}
	if min := cfg.minRoundCost(); cfg.RoundBudget < min {
		return fmt.Errorf("%w: round budget %d below the %d repetitions of one round", htuning.ErrBudgetTooSmall, cfg.RoundBudget, min)
	}
	if cfg.Budget < cfg.RoundBudget {
		return fmt.Errorf("campaign: total budget %d below the %d-unit round budget", cfg.Budget, cfg.RoundBudget)
	}
	if cfg.Epsilon < 0 || math.IsNaN(cfg.Epsilon) {
		return fmt.Errorf("campaign: epsilon %v must be >= 0", cfg.Epsilon)
	}
	if cfg.Market.WorkerChoice && !(cfg.Market.ArrivalRate > 0) {
		return fmt.Errorf("campaign: worker-choice market needs a positive arrival rate, got %v", cfg.Market.ArrivalRate)
	}
	if err := cfg.Drift.validate(cfg.Market); err != nil {
		return err
	}
	if cfg.Deadline != nil {
		if err := cfg.Deadline.validate(); err != nil {
			return err
		}
	}
	if cfg.Retainer != nil {
		if err := cfg.Retainer.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Status is a campaign's lifecycle state. Terminal statuses explain why
// the loop stopped.
type Status string

// Campaign statuses.
const (
	// StatusPending is registered but not yet running a round.
	StatusPending Status = "pending"
	// StatusRunning is mid-loop.
	StatusRunning Status = "running"
	// StatusConverged stopped because the loop reached a fixed point:
	// the round's allocation matched the previous round's and the
	// published belief moved by at most Epsilon.
	StatusConverged Status = "converged"
	// StatusBudgetExhausted stopped because the remaining budget cannot
	// fund another round.
	StatusBudgetExhausted Status = "budget-exhausted"
	// StatusMaxRounds stopped at the round deadline.
	StatusMaxRounds Status = "max-rounds"
	// StatusCanceled was canceled; the round in flight at cancel time
	// published nothing.
	StatusCanceled Status = "canceled"
	// StatusFailed hit a solver or executor error (see Result.Reason).
	StatusFailed Status = "failed"
	// StatusSLOInfeasible stopped because the deadline SLO's admission
	// check found no price up to its scan ceiling meeting the latency
	// SLO under the current belief.
	StatusSLOInfeasible Status = "slo-infeasible"
	// StatusSuspended was stopped by a shutdown that intends to resume
	// it (see ErrSuspended): not terminal — a recovery restores the
	// campaign from its last completed round and continues.
	StatusSuspended Status = "suspended"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	switch s {
	case StatusPending, StatusRunning, StatusSuspended:
		return false
	}
	return true
}

// ErrSuspended, passed as the cancel cause of the context driving Run,
// parks the campaign as StatusSuspended instead of settling it as
// canceled: nothing is journaled, the durable state keeps saying
// "running", and the next recovery resumes the loop from its last
// completed round. Any other cancellation cause is a real cancel.
var ErrSuspended = errors.New("campaign: suspended for shutdown")

// FitInfo describes one published price→rate fit.
type FitInfo struct {
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	R2        float64 `json:"r2"`
	// Prices is how many distinct price levels back the fit.
	Prices int `json:"prices"`
}

// RoundSnapshot records one completed round of the loop.
type RoundSnapshot struct {
	Round int `json:"round"`
	// Algorithm is the solver that priced the round ("ra" or "ha").
	Algorithm string `json:"algorithm"`
	// Model names the believed rate model the round was priced with.
	Model string `json:"model"`
	// Budget is the round's allotted budget; Spent what the allocation
	// actually cost.
	Budget int `json:"budget"`
	Spent  int `json:"spent"`
	// Prices are the tuned per-group repetition prices.
	Prices []int `json:"prices"`
	// Records is how many completed repetitions the round observed;
	// Makespan the round's realized completion time.
	Records  int     `json:"records"`
	Makespan float64 `json:"makespan"`
	// Fit is the model published after folding the round's observations,
	// if one was; FitPending explains why none was (the previous belief
	// stays live). FitDelta is the relative parameter change against the
	// previously published fit (0 for the first fit).
	Fit        *FitInfo `json:"fit,omitempty"`
	FitPending string   `json:"fitPending,omitempty"`
	FitDelta   float64  `json:"fitDelta"`
	// Query is the round's crowd-query outcome (crowd-query campaigns).
	Query *QueryInfo `json:"query,omitempty"`
	// SLO is the round's deadline-SLO accounting (deadline campaigns).
	SLO *SLOInfo `json:"slo,omitempty"`
	// Retainer is the round's pool accounting (retainer campaigns).
	Retainer *RetainerInfo `json:"retainer,omitempty"`
}

// Result is a campaign's inspectable state: live while running, final
// once Status is terminal.
type Result struct {
	Name   string `json:"name"`
	Status Status `json:"status"`
	// Reason explains a terminal status in one line.
	Reason string `json:"reason,omitempty"`
	// RoundsRun counts completed rounds; Rounds holds the retained
	// snapshots (the most recent HistoryCap; DroppedRounds were evicted).
	RoundsRun     int             `json:"roundsRun"`
	DroppedRounds int             `json:"droppedRounds"`
	Rounds        []RoundSnapshot `json:"rounds"`
	// Spent and Remaining account the campaign budget.
	Spent     int `json:"spent"`
	Remaining int `json:"remaining"`
	// Converged reports whether the loop reached its fixed point.
	Converged bool `json:"converged"`
	// Fit is the currently published belief, if any.
	Fit *FitInfo `json:"fit,omitempty"`
	// TotalMakespan sums the realized round makespans.
	TotalMakespan float64 `json:"totalMakespan"`
}

// Checkpoint is a campaign's full resumable state as of a completed
// round (or its terminal settlement): everything Run needs beyond the
// immutable Config to continue the loop bit-identically — the published
// belief, the cumulative per-price aggregates behind it, the budget
// accounting and the round counters. The retained round-snapshot ring
// rides separately (the durable store keeps it per campaign), so one
// checkpoint stays O(#price levels) no matter how long the campaign has
// run. All float fields are finite, so the checkpoint round-trips
// through JSON without losing a bit.
type Checkpoint struct {
	Name   string `json:"name"`
	Status Status `json:"status"`
	Reason string `json:"reason,omitempty"`
	// RoundsRun counts completed rounds; a resumed Run continues at
	// exactly this round index.
	RoundsRun int `json:"roundsRun"`
	Dropped   int `json:"dropped,omitempty"`
	// HistoryCap is the round-snapshot retention bound (after defaults),
	// recorded so replay can maintain the ring without the Config.
	HistoryCap    int     `json:"historyCap"`
	Spent         int     `json:"spent"`
	Remaining     int     `json:"remaining"`
	TotalMakespan float64 `json:"totalMakespan"`
	// Aggs is the cumulative per-price sufficient statistic every future
	// re-fit folds into; restoring it bit-exactly is what makes a resumed
	// campaign's fits identical to an uninterrupted run's.
	Aggs map[int]inference.PriceAggregate `json:"aggs,omitempty"`
	// Fit is the currently published belief, if any (the model is
	// rebuilt from it as Floored{Linear{Slope, Intercept}}, exactly how
	// fold constructed it).
	Fit *FitInfo `json:"fit,omitempty"`
}

// Journal receives a campaign's durable-state events — the hook the
// serving layer's WAL-backed store plugs in; campaigns run without one
// by default. Round fires after every completed round with the
// campaign's full resumable state; its checkpoint status is terminal
// when the round itself decided the loop (convergence), so a single
// journal record always carries the whole decision and a crash can
// never separate a round from its verdict. Finished fires on terminal
// statuses reached between rounds (budget exhaustion, the round
// deadline, cancellation, failure). Implementations must be safe for
// concurrent use by many campaigns and must not call back into the
// campaign; they cannot veto progress — a journal that fails durably
// degrades persistence, never the live loop.
type Journal interface {
	Round(id string, snap RoundSnapshot, chk Checkpoint)
	Finished(id string, chk Checkpoint)
}

// ManagerJournal extends Journal with the manager-level event.
type ManagerJournal interface {
	Journal
	// Evicted fires just before a finished campaign leaves the
	// manager's bounded retention, with its final state and retained
	// round history — the export hook that keeps eviction from being
	// the destruction of history's only copy.
	Evicted(id string, chk Checkpoint, rounds []RoundSnapshot)
}

// fitRecord is one published fit with the model solvers price against.
type fitRecord struct {
	info  FitInfo
	model pricing.RateModel
}

// Campaign is one closed loop in flight. Create with New, drive with
// Run; Snapshot is safe to call concurrently with Run (the Manager's
// inspection path).
type Campaign struct {
	cfg  Config
	est  *htuning.Estimator
	exec Executor

	// journal, when set (SetJournal, before Run), receives round and
	// terminal events under the manager-assigned id jid.
	journal Journal
	jid     string

	mu            sync.Mutex
	status        Status
	reason        string
	rounds        []RoundSnapshot // ring of the last HistoryCap rounds
	dropped       int
	roundsRun     int
	spent         int
	remaining     int
	converged     bool
	fit           *fitRecord
	totalMakespan float64

	// aggs is the O(#price levels) sufficient statistic of every
	// observation ever folded — the campaign's cumulative belief state.
	aggs map[int]inference.PriceAggregate

	// probGroups and probTypes back roundProblem's per-round H-Tuning
	// instance. Rounds run sequentially on the Run goroutine and the
	// solvers retain nothing from the Problem after returning, so one
	// scratch per campaign serves every round.
	probGroups []htuning.Group
	probTypes  []htuning.TaskType
}

// New validates cfg (after applying defaults) and prepares a campaign.
// est may be shared with other campaigns and solves; nil gets a fresh
// one. Sharing never changes results — the estimator memoizes pure
// integrals — it only saves recomputation.
func New(est *htuning.Estimator, cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	var crowdExec *crowdExecutor
	if cfg.Query != nil {
		if cfg.Executor != nil {
			return nil, fmt.Errorf("campaign: Query and Executor are mutually exclusive")
		}
		if len(cfg.Groups) != 0 {
			return nil, fmt.Errorf("campaign: crowd-query campaigns derive groups from the query plan; Groups must be empty")
		}
		var err error
		crowdExec, cfg.Groups, err = newCrowdExecutor(cfg)
		if err != nil {
			return nil, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if est == nil {
		est = htuning.NewEstimator()
	}
	exec := cfg.Executor
	if exec == nil {
		if crowdExec != nil {
			exec = crowdExec
		} else {
			exec = newMarketExecutor(cfg)
			if cfg.Retainer != nil {
				exec = &retainerExecutor{inner: exec, pool: *cfg.Retainer}
			}
		}
	}
	return &Campaign{
		cfg:       cfg,
		est:       est,
		exec:      exec,
		status:    StatusPending,
		remaining: cfg.Budget,
		aggs:      make(map[int]inference.PriceAggregate),
	}, nil
}

// Snapshot returns a consistent copy of the campaign's current state.
func (c *Campaign) Snapshot() Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := Result{
		Name:          c.cfg.Name,
		Status:        c.status,
		Reason:        c.reason,
		RoundsRun:     c.roundsRun,
		DroppedRounds: c.dropped,
		Rounds:        append([]RoundSnapshot(nil), c.rounds...),
		Spent:         c.spent,
		Remaining:     c.remaining,
		Converged:     c.converged,
		TotalMakespan: c.totalMakespan,
	}
	if c.fit != nil {
		info := c.fit.info
		res.Fit = &info
	}
	return res
}

// RoundsRun returns the completed-round count (for fleet statistics).
func (c *Campaign) RoundsRun() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundsRun
}

// Brief returns the campaign's scalar state without copying the round
// history — the cheap path for listings and counters.
func (c *Campaign) Brief() (name string, status Status, roundsRun, spent int, converged bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Name, c.status, c.roundsRun, c.spent, c.converged
}

// SetJournal binds the campaign's lifecycle events to j under id. The
// manager sets it for campaigns it starts or resumes; embedders driving
// Run directly set it themselves. Must be set before Run and never
// while Run is in flight.
func (c *Campaign) SetJournal(j Journal, id string) {
	c.journal = j
	c.jid = id
}

// Checkpoint returns the campaign's current resumable state.
func (c *Campaign) Checkpoint() Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	chk := Checkpoint{
		Name:          c.cfg.Name,
		Status:        c.status,
		Reason:        c.reason,
		RoundsRun:     c.roundsRun,
		Dropped:       c.dropped,
		HistoryCap:    c.cfg.HistoryCap,
		Spent:         c.spent,
		Remaining:     c.remaining,
		TotalMakespan: c.totalMakespan,
	}
	if len(c.aggs) > 0 {
		chk.Aggs = make(map[int]inference.PriceAggregate, len(c.aggs))
		for price, agg := range c.aggs {
			chk.Aggs[price] = agg
		}
	}
	if c.fit != nil {
		info := c.fit.info
		chk.Fit = &info
	}
	return chk
}

// Restore loads a recovered checkpoint and retained round history into
// a freshly built campaign — the recovery path. The campaign must be
// pending and unrun. A non-terminal checkpoint (pending, running or
// suspended at crash or shutdown time) leaves the campaign pending; Run
// then continues from the first round the checkpoint had not completed
// and — because round seeds derive only from Config.Seed, and the
// solvers, the simulator and the fit are deterministic — produces
// exactly the rounds an uninterrupted run would have. A terminal
// checkpoint makes the campaign inspectable without running it again.
func (c *Campaign) Restore(chk Checkpoint, rounds []RoundSnapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status != StatusPending || c.roundsRun != 0 {
		return fmt.Errorf("campaign: Restore on a %s campaign with %d rounds run (restore needs a fresh campaign)", c.status, c.roundsRun)
	}
	status := chk.Status
	switch status {
	case "", StatusPending, StatusRunning, StatusSuspended:
		// Non-terminal at the time the checkpoint was cut: resumable.
		status = StatusPending
	case StatusConverged, StatusBudgetExhausted, StatusMaxRounds, StatusCanceled, StatusFailed, StatusSLOInfeasible:
	default:
		return fmt.Errorf("campaign: checkpoint has unknown status %q", chk.Status)
	}
	if status == StatusPending && chk.RoundsRun == 0 && chk.Spent == 0 && chk.Remaining == 0 &&
		len(rounds) == 0 && len(chk.Aggs) == 0 && chk.Fit == nil {
		// The zero checkpoint: the campaign was registered but never
		// completed a round (a crash between fleet start and the first
		// round record). Nothing to restore — Run starts from scratch.
		return nil
	}
	if chk.Name != "" && chk.Name != c.cfg.Name {
		return fmt.Errorf("campaign: checkpoint is for %q, config is %q (mismatched recovery pairing)", chk.Name, c.cfg.Name)
	}
	if chk.RoundsRun < len(rounds) {
		return fmt.Errorf("campaign: checkpoint has %d rounds run but %d retained snapshots", chk.RoundsRun, len(rounds))
	}
	if chk.RoundsRun > c.cfg.MaxRounds {
		return fmt.Errorf("campaign: checkpoint has %d rounds run past the %d-round deadline", chk.RoundsRun, c.cfg.MaxRounds)
	}
	if chk.Spent < 0 || chk.Spent+chk.Remaining != c.cfg.Budget {
		return fmt.Errorf("campaign: checkpoint accounting (spent %d + remaining %d) does not match the configured budget %d",
			chk.Spent, chk.Remaining, c.cfg.Budget)
	}
	c.status = status
	c.reason = chk.Reason
	c.converged = status == StatusConverged
	c.roundsRun = chk.RoundsRun
	c.dropped = chk.Dropped
	c.spent = chk.Spent
	c.remaining = chk.Remaining
	c.totalMakespan = chk.TotalMakespan
	c.rounds = append(c.rounds[:0], rounds...)
	for price, agg := range chk.Aggs {
		c.aggs[price] = agg
	}
	if chk.Fit != nil {
		info := *chk.Fit
		// Exactly how fold publishes: the contract-checked linear fit
		// behind the positive floor.
		c.fit = &fitRecord{
			info:  info,
			model: pricing.Floored{Base: pricing.Linear{K: info.Slope, B: info.Intercept}},
		}
	}
	return nil
}

// belief returns the model the next round prices with: the published
// fit when one exists, the prior otherwise.
func (c *Campaign) belief() pricing.RateModel {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fit != nil {
		return c.fit.model
	}
	return c.cfg.Prior
}

// finish records a terminal status and returns the final result.
func (c *Campaign) finish(status Status, reason string) Result {
	c.mu.Lock()
	c.status = status
	c.reason = reason
	c.converged = status == StatusConverged
	c.mu.Unlock()
	return c.Snapshot()
}

// finishJournal is finish plus the terminal journal record — the path
// for terminal statuses reached between rounds (budget exhaustion, the
// round deadline, cancellation, failure). Convergence instead rides the
// deciding round's own journal record, so a crash can never land
// between a round and its verdict.
func (c *Campaign) finishJournal(status Status, reason string) Result {
	res := c.finish(status, reason)
	if c.journal != nil {
		c.journal.Finished(c.jid, c.Checkpoint())
	}
	return res
}

// journalRound emits one completed round and the campaign's resulting
// resumable state (terminal when the round decided convergence).
func (c *Campaign) journalRound(snap RoundSnapshot) {
	if c.journal != nil {
		c.journal.Round(c.jid, snap, c.Checkpoint())
	}
}

// stop settles a cancellation observed at round: a suspend cause parks
// the campaign non-terminally without journaling anything — the durable
// state keeps saying "running as of the last completed round", which is
// exactly what a later recovery resumes — while any other cause is a
// real, journaled, terminal cancel.
func (c *Campaign) stop(ctx context.Context, reason string) (Result, error) {
	if errors.Is(context.Cause(ctx), ErrSuspended) {
		c.mu.Lock()
		c.status = StatusSuspended
		c.reason = fmt.Sprintf("suspended for shutdown; resumable from round %d", c.roundsRun)
		c.mu.Unlock()
		return c.Snapshot(), nil
	}
	return c.finishJournal(StatusCanceled, reason), nil
}

// solverFor picks the paper's solver for the round shape: HA when
// processing rates differ across groups (Scenario III), RA otherwise
// (Scenario I collapses to RA's greedy on a single group).
func solverFor(groups []Group) string {
	proc := groups[0].Class.ProcRate
	for _, g := range groups[1:] {
		if g.Class.ProcRate != proc {
			return "ha"
		}
	}
	return "ra"
}

// roundProblem builds the H-Tuning instance the round solves: the
// campaign workload priced under the current belief. Only ProcRate is
// taken from the true classes — acceptance behaviour enters solely
// through belief. The instance lives in the campaign's scratch buffers,
// valid until the next round builds its own (solvers retain nothing).
func (c *Campaign) roundProblem(belief pricing.RateModel, budget int) htuning.Problem {
	if cap(c.probGroups) < len(c.cfg.Groups) {
		c.probGroups = make([]htuning.Group, 0, len(c.cfg.Groups))
		c.probTypes = make([]htuning.TaskType, len(c.cfg.Groups))
	}
	c.probGroups = c.probGroups[:0]
	for i, g := range c.cfg.Groups {
		c.probTypes[i] = htuning.TaskType{
			Name:     g.Name,
			Accept:   belief,
			ProcRate: g.Class.ProcRate,
		}
		c.probGroups = append(c.probGroups, htuning.Group{
			Type:  &c.probTypes[i],
			Tasks: g.Tasks,
			Reps:  g.Reps,
		})
	}
	return htuning.Problem{Budget: budget, Groups: c.probGroups}
}

// fitDelta returns the relative parameter change between fits:
// (|Δslope| + |Δintercept|) scaled by the old parameter magnitude.
func fitDelta(old, new FitInfo) float64 {
	num := math.Abs(new.Slope-old.Slope) + math.Abs(new.Intercept-old.Intercept)
	den := math.Abs(old.Slope) + math.Abs(old.Intercept)
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// fold merges the round's observed on-hold durations into the cumulative
// aggregates and attempts to publish a re-fitted model. It returns the
// publish outcome for the round snapshot; first reports that the publish
// had no predecessor (its delta is undefined). Caller holds no locks.
func (c *Campaign) fold(records []market.RepRecord) (published *FitInfo, pending string, delta float64, first bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range records {
		d := rec.OnHold()
		// The simulator only emits finite non-negative durations; a
		// custom Executor might not, and one +Inf would zero the price's
		// MLE rate forever in the add-only aggregate.
		if rec.Price < 1 || !(d >= 0) || math.IsInf(d, 1) {
			continue
		}
		agg := c.aggs[rec.Price]
		agg.Add(1, d)
		c.aggs[rec.Price] = agg
	}
	res, err := inference.FitAggregates(c.aggs)
	if err != nil {
		// No usable fit yet (e.g. observations at one price level): the
		// previous belief stays live.
		return nil, err.Error(), 0, false
	}
	model := pricing.Linear{K: res.Fit.Slope, B: res.Fit.Intercept}
	if res.Fit.Slope < 0 || !(model.Rate(1) > 0) {
		// A drifted or noisy trace can least-squares into a decreasing or
		// non-positive rate line, violating the contract every solver
		// assumes. Keep the previous belief live rather than publish it.
		return nil, fmt.Sprintf("fit %s violates the rate-model contract (need slope >= 0 and a positive rate at price 1); keeping the previous belief", res.Fit), 0, false
	}
	info := FitInfo{Slope: res.Fit.Slope, Intercept: res.Fit.Intercept, R2: res.Fit.R2, Prices: len(res.Prices)}
	first = c.fit == nil
	if !first {
		delta = fitDelta(c.fit.info, info)
	}
	c.fit = &fitRecord{info: info, model: pricing.Floored{Base: model}}
	out := info
	return &out, "", delta, first
}

// record appends a round snapshot to the bounded history and updates
// the budget accounting.
func (c *Campaign) record(snap RoundSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roundsRun++
	c.spent += snap.Spent
	c.remaining -= snap.Spent
	c.totalMakespan += snap.Makespan
	c.rounds = append(c.rounds, snap)
	if over := len(c.rounds) - c.cfg.HistoryCap; over > 0 {
		c.rounds = append(c.rounds[:0], c.rounds[over:]...)
		c.dropped += over
	}
}

// Run drives the loop to a terminal status. It is a pure function of
// (Config, Seed): per-round market seeds are drawn from one stream
// derived from the campaign seed, so results are identical no matter
// how many campaigns run beside this one. The returned error is non-nil
// only for StatusFailed.
//
// Cancellation (ctx) is honoured between steps: a cancel observed after
// a round executed but before its observations were folded leaves the
// published belief exactly as it was — a canceled round never publishes.
// A cancel whose cause is ErrSuspended parks the campaign as suspended
// (resumable) instead of canceling it.
//
// On a campaign restored from a non-terminal Checkpoint, Run continues
// at the first round the checkpoint had not completed: it re-derives
// the seed-stream position an uninterrupted run would be at (every
// completed round consumed exactly one draw), resumes the convergence
// comparison against the last retained round's prices, and produces
// rounds bit-identical to the run the crash or shutdown interrupted.
func (c *Campaign) Run(ctx context.Context) (Result, error) {
	c.mu.Lock()
	if c.status != StatusPending {
		status := c.status
		c.mu.Unlock()
		return c.Snapshot(), fmt.Errorf("campaign: Run on a %s campaign", status)
	}
	c.status = StatusRunning
	start := c.roundsRun
	var prevPrices []int
	if n := len(c.rounds); n > 0 {
		prevPrices = append([]int(nil), c.rounds[n-1].Prices...)
	}
	c.mu.Unlock()

	seeds := randx.New(c.cfg.Seed)
	for i := 0; i < start; i++ {
		seeds.Uint64()
	}
	for round := start; round < c.cfg.MaxRounds; round++ {
		// Every round consumes its seed before any early exit, so
		// retained rounds use the same seeds regardless of when a
		// previous run stopped.
		roundSeed := seeds.Uint64()
		if err := ctx.Err(); err != nil {
			return c.stop(ctx, "canceled before round "+fmt.Sprint(round))
		}
		c.mu.Lock()
		remaining := c.remaining
		c.mu.Unlock()
		budget := c.cfg.RoundBudget
		if remaining < budget {
			budget = remaining
		}
		if budget < c.cfg.minRoundCost() {
			return c.finishJournal(StatusBudgetExhausted,
				fmt.Sprintf("remaining budget %d cannot fund a round (minimum %d)", remaining, c.cfg.minRoundCost())), nil
		}

		// (1) Tune: solve the round under the current belief. A deadline
		// campaign first runs the [29] comparator as its SLO admission
		// check — a belief under which no price meets the SLO stops the
		// loop before it spends a round that cannot succeed.
		belief := c.belief()
		var slo *SLOInfo
		if c.cfg.Deadline != nil {
			var admitErr error
			slo, admitErr = c.deadlineAdmission(belief)
			if admitErr != nil {
				return c.finishJournal(StatusSLOInfeasible,
					fmt.Sprintf("round %d: deadline SLO inadmissible under the current belief: %v", round, admitErr)), nil
			}
		}
		p := c.roundProblem(belief, budget)
		algo := solverFor(c.cfg.Groups)
		var prices []int
		var spent int
		var err error
		if algo == "ha" {
			var res htuning.HeterogeneousResult
			res, err = htuning.SolveHeterogeneous(c.est, p)
			prices, spent = res.Prices, res.Spent
		} else {
			var res htuning.RepetitionResult
			res, err = htuning.SolveRepetition(c.est, p)
			prices, spent = res.Prices, res.Spent
		}
		if err != nil {
			final := c.finishJournal(StatusFailed, fmt.Sprintf("round %d: solve: %v", round, err))
			return final, fmt.Errorf("campaign %s: round %d: solve: %w", c.cfg.Name, round, err)
		}
		alloc, err := htuning.NewUniformAllocation(p, prices)
		if err != nil {
			final := c.finishJournal(StatusFailed, fmt.Sprintf("round %d: allocation: %v", round, err))
			return final, fmt.Errorf("campaign %s: round %d: allocation: %w", c.cfg.Name, round, err)
		}

		// (2) Post & observe: execute the allocation on the backend.
		obs, err := c.exec.Execute(ctx, round, p, alloc, roundSeed)
		if err != nil {
			if ctx.Err() != nil {
				return c.stop(ctx, fmt.Sprintf("canceled during round %d", round))
			}
			final := c.finishJournal(StatusFailed, fmt.Sprintf("round %d: execute: %v", round, err))
			return final, fmt.Errorf("campaign %s: round %d: execute: %w", c.cfg.Name, round, err)
		}
		// A cancel that lands mid-execution must not publish the round:
		// the belief stays exactly as the last completed round left it.
		if err := ctx.Err(); err != nil {
			return c.stop(ctx, fmt.Sprintf("canceled during round %d", round))
		}

		// (3) Re-fit: fold the observed traces and publish atomically.
		// Executors that spend beyond the solver's first-phase allocation
		// (crowd queries, retainer fees) override the round's spend.
		if obs.Spent != nil {
			spent = *obs.Spent
		}
		if slo != nil {
			slo.Violated = obs.Makespan > c.cfg.Deadline.Makespan
		}
		fit, pending, delta, first := c.fold(obs.Records)
		snap := RoundSnapshot{
			Round:      round,
			Algorithm:  algo,
			Model:      belief.Name(),
			Budget:     budget,
			Spent:      spent,
			Prices:     prices,
			Records:    len(obs.Records),
			Makespan:   obs.Makespan,
			Fit:        fit,
			FitPending: pending,
			FitDelta:   delta,
			Query:      obs.Query,
			SLO:        slo,
			Retainer:   obs.Retainer,
		}
		c.record(snap)

		// (4) Converged? The loop is at a fixed point when the allocation
		// repeated and the belief moved by at most Epsilon (an unchanged
		// belief — nothing new publishable — counts as a zero move; a
		// first-ever fit never does, its delta is undefined).
		stable := fit == nil || (!first && delta <= c.cfg.Epsilon)
		if round > 0 && stable && samePrices(prevPrices, prices) {
			res := c.finish(StatusConverged,
				fmt.Sprintf("fixed point after round %d: allocation repeated, belief moved %.4g <= epsilon %.4g", round, delta, c.cfg.Epsilon))
			// The convergence verdict rides the deciding round's own
			// journal record: the checkpoint below already carries the
			// terminal status.
			c.journalRound(snap)
			return res, nil
		}
		c.journalRound(snap)
		prevPrices = prices
	}
	return c.finishJournal(StatusMaxRounds, fmt.Sprintf("round deadline %d reached", c.cfg.MaxRounds)), nil
}

// samePrices reports whether two per-group price vectors are identical.
func samePrices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run builds and drives one campaign to completion — the convenience
// wrapper the CLI and examples use.
func Run(ctx context.Context, est *htuning.Estimator, cfg Config) (Result, error) {
	c, err := New(est, cfg)
	if err != nil {
		return Result{}, err
	}
	return c.Run(ctx)
}
