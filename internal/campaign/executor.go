package campaign

import (
	"context"
	"fmt"

	"hputune/internal/htuning"
	"hputune/internal/market"
)

// Observation is what one executed round reports back to the loop: the
// completed repetition traces the re-fit consumes, and the realized
// completion time of the round's whole task batch.
type Observation struct {
	Records  []market.RepRecord
	Makespan float64
}

// Executor runs one round's allocation against a marketplace backend.
// The default implementation is the discrete-event market simulator; a
// real crowdsourcing backend (AMT and kin) plugs in behind the same
// interface — post the allocation, collect completion records, return.
//
// Implementations must honour ctx (return promptly once it is
// cancelled; the returned observation is then discarded) and must be
// deterministic in (round, p, a, seed) if campaign-level determinism is
// to hold end to end.
type Executor interface {
	Execute(ctx context.Context, round int, p htuning.Problem, a htuning.Allocation, seed uint64) (Observation, error)
}

// marketExecutor executes rounds on the simulator, with the campaign's
// drift applied to the true classes and market configuration per round.
type marketExecutor struct {
	name    string
	groups  []Group
	base    market.Config
	drift   Drift
	maxTime float64
}

func newMarketExecutor(cfg Config) *marketExecutor {
	return &marketExecutor{
		name:   cfg.Name,
		groups: cfg.Groups,
		base:   cfg.Market.config(),
		drift:  cfg.Drift,
	}
}

// Execute posts one task per (group, task) with the allocation's
// repetition prices and drives the simulation to completion. Records
// come back in acceptance order (the trace model's arrival axis).
func (e *marketExecutor) Execute(ctx context.Context, round int, p htuning.Problem, a htuning.Allocation, seed uint64) (Observation, error) {
	if len(a.RepPrices) != len(e.groups) {
		return Observation{}, fmt.Errorf("campaign: allocation covers %d groups, campaign has %d", len(a.RepPrices), len(e.groups))
	}
	classes, mcfg := e.drift.apply(round, e.groups, e.base)
	mcfg.Seed = seed
	sim, err := market.New(mcfg)
	if err != nil {
		return Observation{}, err
	}
	for gi, g := range e.groups {
		for ti := 0; ti < g.Tasks; ti++ {
			err := sim.Post(market.TaskSpec{
				ID:        fmt.Sprintf("%s-r%d-%s-t%d", e.name, round, g.Name, ti),
				Class:     classes[gi],
				RepPrices: a.RepPrices[gi][ti],
			})
			if err != nil {
				return Observation{}, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return Observation{}, err
	}
	if _, err := sim.Run(); err != nil {
		return Observation{}, err
	}
	return Observation{Records: sim.AllRecords(), Makespan: sim.Makespan()}, nil
}
