package campaign

import (
	"context"
	"fmt"
	"strconv"

	"hputune/internal/htuning"
	"hputune/internal/market"
)

// Observation is what one executed round reports back to the loop: the
// completed repetition traces the re-fit consumes, and the realized
// completion time of the round's whole task batch.
type Observation struct {
	Records  []market.RepRecord
	Makespan float64
	// Spent, when non-nil, overrides the solver's allocation cost as the
	// round's actual spend — multi-phase executors (the crowd-query
	// executor) pay beyond the first-phase workload the tuner priced, and
	// retainer campaigns add pool fees.
	Spent *int
	// Query carries the crowd-query outcome for the round snapshot; nil
	// outside crowd-query campaigns.
	Query *QueryInfo
	// Retainer carries the retainer-pool accounting for the round
	// snapshot; nil outside retainer campaigns.
	Retainer *RetainerInfo
}

// Executor runs one round's allocation against a marketplace backend.
// The default implementation is the discrete-event market simulator; a
// real crowdsourcing backend (AMT and kin) plugs in behind the same
// interface — post the allocation, collect completion records, return.
//
// Implementations must honour ctx (return promptly once it is
// cancelled; the returned observation is then discarded) and must be
// deterministic in (round, p, a, seed) if campaign-level determinism is
// to hold end to end. Execute is called sequentially, one round at a
// time, by a single campaign; an implementation may therefore recycle
// its own buffers between calls, and the returned Observation is only
// guaranteed valid until the next Execute call on the same Executor —
// the loop folds it into aggregates before starting the next round.
type Executor interface {
	Execute(ctx context.Context, round int, p htuning.Problem, a htuning.Allocation, seed uint64) (Observation, error)
}

// marketExecutor executes rounds on the simulator, with the campaign's
// drift applied to the true classes and market configuration per round.
// It owns a market.Buffers and a record scratch recycled across rounds
// (rounds run sequentially per campaign), so a steady-state round
// allocates almost nothing beyond the task ID strings.
type marketExecutor struct {
	name   string
	groups []Group
	base   market.Config
	drift  Drift

	buf  market.Buffers
	recs []market.RepRecord
	// idSuffix[gi][ti] is the precomputed "-<group>-t<ti>" tail of each
	// task ID; the per-round "<name>-r<round>" head is prepended per
	// Execute, leaving one string concatenation per task as the round's
	// only ID cost.
	idSuffix [][]string
}

func newMarketExecutor(cfg Config) *marketExecutor {
	e := &marketExecutor{
		name:   cfg.Name,
		groups: cfg.Groups,
		base:   cfg.Market.config(),
		drift:  cfg.Drift,
	}
	e.idSuffix = make([][]string, len(cfg.Groups))
	for gi, g := range cfg.Groups {
		e.idSuffix[gi] = make([]string, g.Tasks)
		for ti := 0; ti < g.Tasks; ti++ {
			e.idSuffix[gi][ti] = "-" + g.Name + "-t" + strconv.Itoa(ti)
		}
	}
	return e
}

// Execute posts one task per (group, task) with the allocation's
// repetition prices and drives the simulation to completion. Records
// come back in acceptance order (the trace model's arrival axis). The
// returned Observation reuses the executor's scratch and is valid until
// the next Execute call (see the Executor contract).
func (e *marketExecutor) Execute(ctx context.Context, round int, p htuning.Problem, a htuning.Allocation, seed uint64) (Observation, error) {
	if len(a.RepPrices) != len(e.groups) {
		return Observation{}, fmt.Errorf("campaign: allocation covers %d groups, campaign has %d", len(a.RepPrices), len(e.groups))
	}
	classes, mcfg := e.drift.apply(round, e.groups, e.base)
	mcfg.Seed = seed
	sim, err := market.NewWithBuffers(mcfg, &e.buf)
	if err != nil {
		return Observation{}, err
	}
	prefix := e.name + "-r" + strconv.Itoa(round)
	for gi, g := range e.groups {
		for ti := 0; ti < g.Tasks; ti++ {
			err := sim.Post(market.TaskSpec{
				ID:        prefix + e.idSuffix[gi][ti],
				Class:     classes[gi],
				RepPrices: a.RepPrices[gi][ti],
			})
			if err != nil {
				return Observation{}, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return Observation{}, err
	}
	if _, err := sim.Run(); err != nil {
		return Observation{}, err
	}
	e.recs = sim.AppendRecords(e.recs[:0])
	return Observation{Records: e.recs, Makespan: sim.Makespan()}, nil
}
