package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/spec"
	"hputune/internal/store"
)

// crashFleetDoc is the suite's fleet: three campaigns whose drift keeps
// the fit moving (epsilon 0 + drift means no early convergence), so
// every run has plenty of rounds to crash between, plus one that
// exhausts its budget mid-way.
const crashFleetDoc = `{"campaigns":[
  {"name":"alpha","roundBudget":1000,"budget":8000,"rounds":8,"epsilon":0,"seed":7,
   "prior":{"kind":"linear","k":1,"b":1},
   "drift":{"kind":"rate","factor":0.92},
   "groups":[{"name":"g3","tasks":50,"reps":3,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}},
             {"name":"g5","tasks":50,"reps":5,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}}]},
  {"name":"beta","roundBudget":900,"budget":7200,"rounds":8,"epsilon":0,"seed":21,
   "prior":{"kind":"linear","k":1,"b":1},
   "drift":{"kind":"shock","factor":0.7,"round":3},
   "groups":[{"name":"g2","tasks":60,"reps":2,"procRate":2,"true":{"kind":"linear","k":1.8,"b":0.6}},
             {"name":"g4","tasks":45,"reps":4,"procRate":3,"true":{"kind":"linear","k":1.8,"b":0.6}}]},
  {"name":"gamma","roundBudget":800,"budget":2000,"rounds":8,"epsilon":0,"seed":33,
   "prior":{"kind":"linear","k":1,"b":1},
   "groups":[{"name":"g3","tasks":40,"reps":3,"procRate":2,"true":{"kind":"linear","k":2.2,"b":0.4}}]}
]}`

// crowdCrashFleetDoc is the crowd-DB flavor of the suite: the four
// crowd presets (top-k, group-by, deadline SLO, retainer pool), whose
// recovery path must rebuild the crowd executors from the verbatim spec
// and resume byte-identically.
const crowdCrashFleetDoc = `{"fleet":{"preset":"crowd","seed":5}}`

// referenceFleet runs the crash fleet uninterrupted, in-process.
func referenceFleet(t *testing.T) []campaign.Result {
	t.Helper()
	return referenceFleetDoc(t, crashFleetDoc)
}

// referenceFleetDoc runs any fleet doc uninterrupted, in-process.
func referenceFleetDoc(t *testing.T, doc string) []campaign.Result {
	t.Helper()
	cfgs, err := spec.ParseCampaigns([]byte(doc), spec.BuildOpts{})
	if err != nil {
		t.Fatalf("parse fleet: %v", err)
	}
	ref, err := campaign.RunFleet(context.Background(), nil, cfgs, 0)
	if err != nil {
		t.Fatalf("reference fleet: %v", err)
	}
	return ref
}

// recoverTestServer builds a store-backed server over dir.
func recoverTestServer(t *testing.T, dir string, opts store.Options) (*store.Store, *Server, *httptest.Server) {
	t.Helper()
	opts.NoSync = true
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	s, err := Recover(Config{}, st)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return st, s, ts
}

// startFleetAndWait posts the fleet and blocks until every campaign in
// the manager settles.
func startFleetAndWait(t *testing.T, s *Server, ts *httptest.Server, doc string) []string {
	t.Helper()
	resp, raw := postJSON(t, ts.URL+"/v1/campaigns", doc)
	if resp.StatusCode != 202 {
		t.Fatalf("start fleet: status %d: %s", resp.StatusCode, raw)
	}
	var started CampaignStartResponse
	if err := json.Unmarshal(raw, &started); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	waitAllSettled(t, s)
	return started.IDs
}

// waitAllSettled blocks until every tracked campaign's Done channel
// closes.
func waitAllSettled(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.After(60 * time.Second)
	for _, sum := range s.Campaigns().List() {
		done, ok := s.Campaigns().Done(sum.ID)
		if !ok {
			continue
		}
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("campaign %s never settled", sum.ID)
		}
	}
}

// getResult fetches one campaign's full result over HTTP.
func getResult(t *testing.T, ts *httptest.Server, id string) campaign.Result {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("get %s: status %d: %s", id, resp.StatusCode, raw)
	}
	var got struct {
		ID string `json:"id"`
		campaign.Result
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return got.Result
}

func resultJSON(t *testing.T, res campaign.Result) string {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(raw)
}

// truncatingWriter tears the WAL after a byte budget — the crash.
type truncatingWriter struct {
	w      io.Writer
	budget int
}

var errCrashed = errors.New("injected crash: WAL torn mid-append")

func (tw *truncatingWriter) Write(p []byte) (int, error) {
	if tw.budget <= 0 {
		return 0, errCrashed
	}
	if len(p) > tw.budget {
		n, _ := tw.w.Write(p[:tw.budget])
		tw.budget = 0
		return n, errCrashed
	}
	tw.budget -= len(p)
	return tw.w.Write(p)
}

// TestCrashRecoveryResumesByteIdentical is the crash-recovery suite:
// the fleet runs against a store whose WAL is torn at a randomized byte
// boundary (often mid-append — the torn final record every crash can
// leave), the "process" is discarded, and a fresh server recovers the
// directory. Every campaign the WAL knew about must finish with a
// result byte-identical to the uninterrupted reference run: the
// recovered rounds replayed from the WAL and the rounds the resumed
// process re-executes must line up exactly.
func TestCrashRecoveryResumesByteIdentical(t *testing.T) {
	trials := 5
	if testing.Short() {
		trials = 2
	}
	runCrashRecoveryDrill(t, crashFleetDoc, referenceFleet(t), 1337, trials)
}

// TestCrowdCrashRecoveryResumesByteIdentical runs the same randomized
// kill-mid-fleet drill over the crowd-DB fleet: a WAL torn mid-campaign
// plus recovery must rebuild the crowd-query executors (synthesized
// datasets, derived groups, the retainer pool's decorrelated assignment
// stream) purely from the journaled verbatim spec and land on the
// uninterrupted fleet's bytes.
func TestCrowdCrashRecoveryResumesByteIdentical(t *testing.T) {
	trials := 3
	if testing.Short() {
		trials = 1
	}
	runCrashRecoveryDrill(t, crowdCrashFleetDoc, referenceFleetDoc(t, crowdCrashFleetDoc), 4242, trials)
}

// runCrashRecoveryDrill tears the WAL at randomized byte boundaries
// while doc's fleet runs, discards the "process", recovers the torn
// directory into a fresh server and requires every campaign the WAL
// knew about to finish byte-identical to ref.
func runCrashRecoveryDrill(t *testing.T, doc string, ref []campaign.Result, rngSeed int64, trials int) {
	// Probe pass: full run with no fault, to size the WAL and to pin
	// that a store-backed server matches the reference exactly.
	probeDir := t.TempDir()
	_, probeSrv, probeTS := recoverTestServer(t, probeDir, store.Options{})
	probeIDs := startFleetAndWait(t, probeSrv, probeTS, doc)
	for i, id := range probeIDs {
		if got, want := resultJSON(t, getResult(t, probeTS, id)), resultJSON(t, ref[i]); got != want {
			t.Fatalf("store-backed run diverged from reference at %s\n got  %s\n want %s", id, got, want)
		}
	}
	walRaw, err := os.ReadFile(filepath.Join(probeDir, "wal.log"))
	if err != nil {
		t.Fatalf("read probe WAL: %v", err)
	}
	walSize := len(walRaw)
	if walSize < 1000 {
		t.Fatalf("probe WAL only %d bytes; fleet too small for meaningful crash points", walSize)
	}

	rng := rand.New(rand.NewSource(rngSeed))
	resumed := 0
	for trial := 0; trial < trials; trial++ {
		// Random crash boundary across the whole WAL, skewed away from
		// the trivial endpoints; byte granularity lands many of these
		// mid-frame.
		budget := 64 + rng.Intn(walSize-64)
		t.Run(fmt.Sprintf("crash-at-%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			st1, srv1, ts1 := recoverTestServer(t, dir, store.Options{
				WrapWAL: func(w io.Writer) io.Writer { return &truncatingWriter{w: w, budget: budget} },
			})
			startFleetAndWait(t, srv1, ts1, doc)
			if st1.Err() == nil {
				t.Fatalf("WAL budget %d never tripped (full WAL is %d)", budget, walSize)
			}
			ts1.Close() // the crashed process is gone

			// Recover the torn directory into a fresh server; resumed
			// campaigns run to completion on their own.
			st2, err := store.Open(dir, store.Options{NoSync: true})
			if err != nil {
				t.Fatalf("reopen torn dir: %v", err)
			}
			defer st2.Close()
			state, err := st2.State()
			if err != nil {
				t.Fatalf("State: %v", err)
			}
			for _, cs := range state.Campaigns {
				if !cs.Checkpoint.Status.Terminal() {
					resumed++
				}
			}
			srv2, err := Recover(Config{}, st2)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			ts2 := httptest.NewServer(srv2.Handler())
			defer ts2.Close()
			waitAllSettled(t, srv2)
			for i := range ref {
				id := fmt.Sprintf("c%d", i+1)
				if _, known := state.Campaigns[id]; !known {
					// The crash predated this campaign's fleet record; it
					// never durably existed. The fleet record is a single
					// atomic append, so either all ids survive or none.
					if len(state.Campaigns) != 0 {
						t.Fatalf("fleet record half-survived: %d of %d campaigns", len(state.Campaigns), len(ref))
					}
					continue
				}
				if got, want := resultJSON(t, getResult(t, ts2, id)), resultJSON(t, ref[i]); got != want {
					t.Fatalf("campaign %s after crash+recovery diverged from the uninterrupted run\n got  %s\n want %s", id, got, want)
				}
			}
		})
	}
	if resumed == 0 {
		t.Fatalf("no trial crashed mid-campaign (%d trials over a %d-byte WAL); the suite proved nothing", trials, walSize)
	}
}

// delayingWriter dawdles before delegating each write, so the three
// campaigns' concurrent journal appends pile into shared group-commit
// batches instead of each flushing alone.
type delayingWriter struct {
	w     io.Writer
	delay time.Duration
}

func (dw *delayingWriter) Write(p []byte) (int, error) {
	time.Sleep(dw.delay)
	return dw.w.Write(p)
}

// TestCrashRecoveryGroupCommitBatched reruns the crash-recovery
// property with group commit doing real batching: a slow WAL forces the
// fleet's concurrent round appends into multi-record batches, and the
// byte budget then tears one of those batches mid-frame — the crash
// between a batched write and its commit. Recovery must still resume
// every surviving campaign byte-identical to the uninterrupted run; a
// batch recovering with a gap would fail the reopen itself.
func TestCrashRecoveryGroupCommitBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("runs crash trials over full fleets")
	}
	ref := referenceFleet(t)
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 2; trial++ {
		budget := 800 + rng.Intn(6000)
		t.Run(fmt.Sprintf("crash-at-%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			st1, srv1, ts1 := recoverTestServer(t, dir, store.Options{
				WrapWAL: func(w io.Writer) io.Writer {
					return &truncatingWriter{w: &delayingWriter{w: w, delay: 2 * time.Millisecond}, budget: budget}
				},
			})
			startFleetAndWait(t, srv1, ts1, crashFleetDoc)
			if st1.Err() == nil {
				t.Skipf("WAL budget %d never tripped", budget)
			}
			ts1.Close()

			st2, err := store.Open(dir, store.Options{NoSync: true})
			if err != nil {
				t.Fatalf("reopen after batched crash: %v", err)
			}
			defer st2.Close()
			state, err := st2.State()
			if err != nil {
				t.Fatalf("State: %v", err)
			}
			srv2, err := Recover(Config{}, st2)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			ts2 := httptest.NewServer(srv2.Handler())
			defer ts2.Close()
			waitAllSettled(t, srv2)
			for i := range ref {
				id := fmt.Sprintf("c%d", i+1)
				if _, known := state.Campaigns[id]; !known {
					if len(state.Campaigns) != 0 {
						t.Fatalf("fleet record half-survived: %d of %d campaigns", len(state.Campaigns), len(ref))
					}
					continue
				}
				if got, want := resultJSON(t, getResult(t, ts2, id)), resultJSON(t, ref[i]); got != want {
					t.Fatalf("campaign %s after batched crash+recovery diverged\n got  %s\n want %s", id, got, want)
				}
			}
		})
	}
}

// TestGracefulRestartResumes pins the SIGTERM path: shutting a
// store-backed server down mid-fleet suspends (not cancels) running
// campaigns, drain-then-snapshot compacts the WAL, and the next process
// resumes them to results byte-identical to the uninterrupted run.
func TestGracefulRestartResumes(t *testing.T) {
	ref := referenceFleet(t)
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv1, err := Recover(Config{}, st1)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	resp, raw := postJSON(t, ts1.URL+"/v1/campaigns", crashFleetDoc)
	if resp.StatusCode != 202 {
		t.Fatalf("start fleet: status %d: %s", resp.StatusCode, raw)
	}
	// Let some rounds land, then shut down mid-flight the way serve()
	// does: Close (suspend), then drain-then-snapshot.
	waitForRounds(t, st1, 2)
	srv1.Close()
	suspendedAny := false
	for _, sum := range srv1.Campaigns().List() {
		if sum.Status == campaign.StatusSuspended {
			suspendedAny = true
		}
	}
	if err := st1.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := st1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ts1.Close()
	if !suspendedAny {
		t.Skip("fleet finished before the shutdown landed; nothing was suspended (timing)")
	}

	// The compacted directory must recover purely from the snapshot.
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not empty after drain-then-snapshot: %v %d", err, fi.Size())
	}
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	srv2, err := Recover(Config{}, st2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	waitAllSettled(t, srv2)
	for i := range ref {
		id := fmt.Sprintf("c%d", i+1)
		if got, want := resultJSON(t, getResult(t, ts2, id)), resultJSON(t, ref[i]); got != want {
			t.Fatalf("campaign %s after graceful restart diverged\n got  %s\n want %s", id, got, want)
		}
	}
	// Lifetime counters survived the restart and the resumed campaigns
	// finished exactly once each.
	stats := srv2.Campaigns().Stats()
	if stats.Started != uint64(len(ref)) || stats.Finished != uint64(len(ref)) {
		t.Fatalf("counters after restart: %+v, want started=finished=%d", stats, len(ref))
	}
}

// waitForRounds blocks until the store has journaled at least n round
// records.
func waitForRounds(t *testing.T, st *store.Store, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		state, err := st.State()
		if err != nil {
			t.Fatalf("State: %v", err)
		}
		rounds := 0
		for _, cs := range state.Campaigns {
			rounds += len(cs.Rounds)
		}
		if rounds >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("store never saw %d rounds", n)
}

// TestRecoverIngestAndFit pins the ingest leg of recovery: aggregates,
// the lifetime record counter and the published fit survive a crash,
// and a "fitted"-model solve on the recovered server answers exactly
// like the original.
func TestRecoverIngestAndFit(t *testing.T) {
	dir := t.TempDir()
	_, _, ts1 := recoverTestServer(t, dir, store.Options{})
	resp, raw := postJSON(t, ts1.URL+"/v1/ingest", ingestBody(t, []int{1, 2, 4, 8}, 50))
	if resp.StatusCode != 200 {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, raw)
	}
	// A second batch moves the fit — recovery must keep the latest.
	resp, raw = postJSON(t, ts1.URL+"/v1/ingest", ingestBody(t, []int{3, 6}, 30))
	if resp.StatusCode != 200 {
		t.Fatalf("ingest 2: status %d: %s", resp.StatusCode, raw)
	}
	fittedSpec := `{"budget":300,"groups":[{"name":"a","tasks":5,"reps":2,"procRate":2.0,"model":{"kind":"fitted"}}]}`
	resp, wantSolve := postJSON(t, ts1.URL+"/v1/solve", fittedSpec)
	if resp.StatusCode != 200 {
		t.Fatalf("fitted solve: status %d: %s", resp.StatusCode, wantSolve)
	}
	wantStats := getStats(t, ts1.URL)
	ts1.Close()

	// Crash-reopen: no compact, no graceful anything.
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	srv2, err := Recover(Config{}, st2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	gotStats := getStats(t, ts2.URL)
	if gotStats.Serve.IngestedRecords != wantStats.Serve.IngestedRecords {
		t.Fatalf("ingested records %d after recovery, want %d", gotStats.Serve.IngestedRecords, wantStats.Serve.IngestedRecords)
	}
	gf, wf := gotStats.Fit, wantStats.Fit
	if gf == nil || wf == nil || *gf != *wf {
		t.Fatalf("fit after recovery %+v, want %+v", gf, wf)
	}
	resp, gotSolve := postJSON(t, ts2.URL+"/v1/solve", fittedSpec)
	if resp.StatusCode != 200 {
		t.Fatalf("fitted solve after recovery: status %d: %s", resp.StatusCode, gotSolve)
	}
	if string(gotSolve) != string(wantSolve) {
		t.Fatalf("fitted solve after recovery diverged\n got  %s\n want %s", gotSolve, wantSolve)
	}
}

// TestRecoverRefusesMismatchedState guards the failure mode where a
// state directory and the parsed fleet disagree (say, a hand-edited
// snapshot): recovery must fail loudly, not resume garbage.
func TestRecoverRefusesMismatchedState(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// A fleet record whose spec has one campaign but claims two ids.
	doc := `{"campaign":{"name":"x","roundBudget":100,"rounds":2,"seed":1,
	  "prior":{"kind":"linear","k":1,"b":1},
	  "groups":[{"name":"g","tasks":10,"reps":2,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}}]}}`
	if err := st.AppendFleet([]byte(doc), []string{"c1", "c2"}, nil); err != nil {
		t.Fatalf("AppendFleet: %v", err)
	}
	st.Close()
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if _, err := Recover(Config{}, st2); err == nil {
		t.Fatal("Recover accepted a fleet whose ids outnumber its configs")
	}
}
