// Package server is the long-running HTTP serving layer over the tuning
// engine: the htuned binary wires it to a listener, requesters POST
// H-Tuning specs and trace files at it continuously. One process holds
// one bounded-LRU Estimator shared by every request, one admission gate
// in front of the engine worker pool (overload is an immediate 503, not
// a backlog), and one atomically-swapped linearity fit that /v1/ingest
// re-tunes from observed traces while solves are in flight.
//
// Endpoints (all JSON unless noted):
//
//	POST   /v1/solve               RA (Algorithm 2) over a spec document
//	POST   /v1/solve-heterogeneous HA (Algorithm 3) over a spec document
//	POST   /v1/simulate            deterministic Monte-Carlo scoring
//	POST   /v1/ingest              trace records (CSV or JSONL body) → MLE → fit
//	POST   /v1/campaigns           start closed-loop campaigns (campaign spec)
//	GET    /v1/campaigns           list campaigns
//	GET    /v1/campaigns/{id}      inspect one campaign's rounds and status
//	DELETE /v1/campaigns/{id}      cancel a campaign
//	GET    /v1/stats               cache/gate/fit/campaign counters
//	GET    /v1/metrics             latency histograms + cache/WAL/campaign gauges
//	GET    /v1/healthz             liveness probe
//
// Solve responses are byte-identical to the in-process engine batch API:
// the handlers call the same engine.SolveBatch / SolveHeterogeneousBatch
// / SimulateBatch the Go API exposes, against the same shared estimator.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"mime"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/conc"
	"hputune/internal/engine"
	"hputune/internal/htuning"
	"hputune/internal/inference"
	"hputune/internal/market"
	"hputune/internal/numeric"
	"hputune/internal/pricing"
	"hputune/internal/spec"
	"hputune/internal/store"
	"hputune/internal/trace"
	"hputune/internal/traffic"
)

// maxBodyBytes bounds request bodies (specs and trace uploads).
const maxBodyBytes = 32 << 20

// maxTrials bounds per-instance trial counts in simulate requests.
const maxTrials = 10_000_000

// defaultTrials is used when a simulate request omits "trials".
const defaultTrials = 2000

// Per-problem resource ceilings, enforced before any admission or
// allocation so a small hostile request cannot OOM the process (an
// allocation is materialized per repetition) or hold a gate permit for
// hours (RA's greedy is O(budget); Monte Carlo is O(trials × reps)).
const (
	// maxProblemBudget bounds one instance's budget in payment units.
	maxProblemBudget = 16 << 20
	// maxProblemReps bounds one instance's Σ tasks × reps.
	maxProblemReps = 4 << 20
	// maxProblemWork bounds budget × groups, the step count of the RA/HA
	// greedy (each budget unit re-scans the group candidates), so one
	// admitted instance solves in seconds, not days.
	maxProblemWork = 1 << 28
	// maxSimulateWork bounds one simulate request's total sampled
	// latencies: trials × Σ reps across every instance.
	maxSimulateWork = 1_000_000_000
	// maxRequestReps bounds Σ tasks × reps across a whole simulate
	// request — the allocations are materialized per repetition before
	// admission, so this is the memory ceiling (~8 B per repetition),
	// independent of the trials-scaled work ceiling.
	maxRequestReps = 4 << 20
	// maxPriceLevels bounds the distinct price levels the ingest
	// aggregates track, keeping the fit state O(1) for the life of the
	// process; real deployments probe a handful of price points.
	maxPriceLevels = 4096
	// maxRequestProblems bounds instances per solve batch and
	// maxRequestBudget their summed budgets, so one admitted request
	// cannot hold its permit for an unbounded stretch of RA/HA work
	// (each solve is O(budget) greedy steps).
	maxRequestProblems = 4096
	maxRequestBudget   = 64 << 20
	// maxIngestInFlight is the ingest-specific admission bound: ingest
	// stays off the solve gate (re-tuning must not starve behind solve
	// traffic) but each upload holds ~3× its body in memory while
	// parsing, so concurrency needs its own small cap.
	maxIngestInFlight = 4
)

// checkProblemLimits enforces the resource ceilings on one instance and
// returns its total repetition count. Solver-level validation (positive
// shapes, affordable budget) still happens downstream; this only rejects
// sizes that would be unsafe to even materialize.
func checkProblemLimits(i int, p htuning.Problem) (reps int, err error) {
	if p.Budget > maxProblemBudget {
		return 0, fmt.Errorf("problem %d: budget %d above the %d-unit service limit", i, p.Budget, maxProblemBudget)
	}
	if p.Budget > 0 && p.Budget*len(p.Groups) > maxProblemWork {
		return 0, fmt.Errorf("problem %d: budget %d × %d groups above the %d-step service limit; lower the budget or merge groups", i, p.Budget, len(p.Groups), maxProblemWork)
	}
	for _, g := range p.Groups {
		if g.Tasks > maxProblemReps || g.Reps > maxProblemReps {
			return 0, fmt.Errorf("problem %d: %d tasks × %d reps above the %d-repetition service limit", i, g.Tasks, g.Reps, maxProblemReps)
		}
		if g.Tasks > 0 && g.Reps > 0 {
			reps += g.Tasks * g.Reps
		}
		if reps > maxProblemReps {
			return 0, fmt.Errorf("problem %d: more than %d total repetitions (service limit)", i, maxProblemReps)
		}
	}
	return reps, nil
}

// Config sizes one serving process. The zero value is usable.
type Config struct {
	// MaxInFlight bounds concurrently admitted solve/simulate requests;
	// excess requests get 503. <= 0 means GOMAXPROCS.
	MaxInFlight int
	// Workers is the engine worker-pool size each admitted batch may
	// use. <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries bounds the shared estimator's memo cache (total
	// entries across shards). <= 0 uses the estimator default
	// (32 shards × 2048 entries).
	CacheEntries int
	// MaxCampaigns bounds concurrently running closed-loop campaigns
	// (background work off the solve gate); excess starts get 503.
	// <= 0 means 64.
	MaxCampaigns int
	// Traffic tunes the hardening layer: admission weighting, rate
	// limiting, CPU shedding, access logging. The zero value keeps the
	// plain admission behavior.
	Traffic TrafficConfig
	// Node names this process within a cluster; the replication
	// endpoints report it (body and X-HT-Node header) so a follower can
	// verify which primary it is shipping from. Empty is fine for a
	// standalone process.
	Node string
}

// fitState is one immutable trace-inferred rate model; the current one
// is swapped in atomically so solves pick it up without locking.
type fitState struct {
	model pricing.Linear
	fit   numeric.LinearFit
	// prices is how many distinct price levels back the fit.
	prices int
}

// guardFit validates one candidate rate model against the contract
// every solver assumes (positive, non-decreasing rate for c >= 1) and
// returns its publishable state, or the fitPending reason the caller
// reports while keeping the previous fit live. Both the local ingest
// re-fit and the cluster's merged-fit push publish through this guard,
// so a noisy partition can no more poison the cluster model than a
// noisy trace can poison a standalone node's.
func guardFit(fit numeric.LinearFit, prices int) (*fitState, string) {
	model := pricing.Linear{K: fit.Slope, B: fit.Intercept}
	if fit.Slope < 0 || !(model.Rate(1) > 0) {
		return nil, fmt.Sprintf(
			"fit %s violates the rate-model contract (need slope >= 0 and a positive rate at price 1); keeping the previous fit",
			fit)
	}
	return &fitState{model: model, fit: fit, prices: prices}, ""
}

// Server implements the HTTP API. Create with New; it is safe for
// concurrent use by any number of requests.
type Server struct {
	cfg        Config
	est        *htuning.Estimator
	gate       *traffic.Gate // two-class admission: bulk solves vs priority ingest/campaigns
	ingestGate *conc.Gate    // ingest memory cap (each upload holds ~3× its body while parsing)
	campaigns  *campaign.Manager
	mux        *http.ServeMux

	// Traffic layer: per-client rate limiting, process load sampling,
	// per-endpoint latency histograms, and the access log.
	limiter      *traffic.Limiter
	loadSampler  *traffic.LoadSampler
	hist         *traffic.HistogramSet
	clientHeader string
	accessLog    *log.Logger

	// st, when non-nil (Recover), journals ingest batches, published
	// fits and campaign lifecycle events to the durable store, and
	// switches shutdown from canceling campaigns to suspending them.
	st *store.Store

	// ingestMu serializes fit recomputation; aggs is the O(#prices)
	// sufficient statistic of everything ever ingested.
	ingestMu sync.Mutex
	aggs     map[int]inference.PriceAggregate
	fit      atomic.Pointer[fitState]

	records   atomic.Uint64 // trace records ingested
	solves    atomic.Uint64 // problems solved (RA + HA)
	simulates atomic.Uint64 // allocations scored
	ingests   atomic.Uint64 // ingest requests applied
}

// New builds a server. The estimator cache is bounded per
// cfg.CacheEntries; an invalid bound is the only construction error.
func New(cfg Config) (*Server, error) {
	est := htuning.NewEstimator()
	if cfg.CacheEntries > 0 {
		var err error
		est, err = htuning.NewEstimatorCapacity(cfg.CacheEntries)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	tc := cfg.Traffic
	loadSampler := traffic.NewLoadSampler()
	s := &Server{
		cfg: cfg,
		est: est,
		gate: traffic.NewGate(traffic.GateConfig{
			Limit:     cfg.MaxInFlight,
			BulkShare: tc.BulkShare,
			ShedLoad:  tc.ShedCPU,
			Load:      loadSampler.Load,
		}),
		ingestGate: conc.NewGate(maxIngestInFlight),
		campaigns:  campaign.NewManager(est, cfg.MaxCampaigns),
		aggs:       make(map[int]inference.PriceAggregate),
		limiter: traffic.NewLimiter(traffic.LimiterConfig{
			Rate:       tc.RatePerClient,
			Burst:      tc.RateBurst,
			MaxClients: tc.MaxClients,
		}),
		loadSampler:  loadSampler,
		clientHeader: tc.ClientHeader,
		accessLog:    tc.AccessLog,
	}
	if s.clientHeader == "" {
		s.clientHeader = DefaultClientHeader
	}
	s.mux = http.NewServeMux()
	var patterns []string
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, h)
		patterns = append(patterns, pattern)
	}
	handle("POST /v1/solve", s.handleSolve)
	handle("POST /v1/solve-heterogeneous", s.handleSolveHeterogeneous)
	handle("POST /v1/simulate", s.handleSimulate)
	handle("POST /v1/ingest", s.handleIngest)
	handle("POST /v1/campaigns", s.handleCampaignStart)
	handle("GET /v1/campaigns", s.handleCampaignList)
	handle("GET /v1/campaigns/{id}", s.handleCampaignGet)
	handle("DELETE /v1/campaigns/{id}", s.handleCampaignCancel)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/metrics", s.handleMetrics)
	handle("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handle("GET /v1/replication/state", s.handleReplicationState)
	handle("GET /v1/replication/wal", s.handleReplicationWAL)
	handle("GET /v1/replication/aggregates", s.handleReplicationAggregates)
	handle("POST /v1/replication/fit", s.handleReplicationFit)
	s.hist = traffic.NewHistogramSet(patterns...)
	return s, nil
}

// Handler returns the root handler (also usable under httptest): the
// traffic middleware (request ids, rate limiting, envelope
// interception, histograms, access log) around the route mux, under the
// request-body byte cap.
func (s *Server) Handler() http.Handler {
	return http.MaxBytesHandler(s.middleware(), maxBodyBytes)
}

// Estimator exposes the shared estimator, e.g. to pre-warm it.
func (s *Server) Estimator() *htuning.Estimator { return s.est }

// Campaigns exposes the campaign manager, e.g. to start fleets from
// embedding code without going through HTTP.
func (s *Server) Campaigns() *campaign.Manager { return s.campaigns }

// Close stops every running campaign and waits for it to settle. The
// HTTP serving loop calls it on shutdown; embedders using Handler
// directly should call it themselves. Without a durable store the
// campaigns are canceled (their in-flight rounds publish nothing); with
// one (Recover) they are suspended instead — nothing terminal is
// journaled, so the next Recover resumes each from its last completed
// round. Closing the store itself stays the owner's job (the htuned
// binary compacts and closes it after the request drain).
func (s *Server) Close() {
	if s.st != nil {
		s.campaigns.Suspend()
		return
	}
	s.campaigns.Close()
}

// Store returns the durable store backing this server, or nil when it
// runs in-memory only.
func (s *Server) Store() *store.Store { return s.st }

// buildOpts resolves "fitted" models against the current ingest fit.
// The pointer is loaded once per request, so a concurrent re-tune never
// mixes two fits within one solve.
func (s *Server) buildOpts() spec.BuildOpts {
	if f := s.fit.Load(); f != nil {
		return spec.BuildOpts{Fitted: f.model}
	}
	return spec.BuildOpts{}
}

// Fit returns the current trace-inferred linear model, if any.
func (s *Server) Fit() (pricing.Linear, bool) {
	if f := s.fit.Load(); f != nil {
		return f.model, true
	}
	return pricing.Linear{}, false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // headers are out; nothing useful to do on failure
}

// overloadRetry is the Retry-After hint on gate-capacity 503s. The gate
// has no queue, so there is no backlog to derive a wait from; one
// second is the poll interval that drains a typical burst.
const overloadRetry = time.Second

// admitBulk gates the solve/simulate endpoints on the bulk class: at
// most BulkShare of the permit pool, shed first under CPU pressure. On
// false the 503 envelope has been written.
func (s *Server) admitBulk(w http.ResponseWriter) bool {
	if s.gate.TryAcquire(traffic.Bulk) {
		return true
	}
	writeOverloaded(w, overloadRetry,
		"server at solve capacity (%d of %d permits open to bulk work); retry shortly",
		s.gate.BulkLimit(), s.gate.Limit())
	return false
}

// admitPriority gates ingest and campaign starts on the priority class,
// which may use the whole permit pool — bulk traffic cannot starve it.
func (s *Server) admitPriority(w http.ResponseWriter, what string) bool {
	if s.gate.TryAcquire(traffic.Priority) {
		return true
	}
	writeOverloaded(w, overloadRetry,
		"server at %s capacity (%d permits in flight); retry shortly", what, s.gate.Limit())
	return false
}

// badRequestStatus maps a client-input error to its HTTP status: an
// over-cap body is 413 (shrink or split), everything else 400.
func badRequestStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeSpec reads and materializes a spec document request body via
// the shared spec parser (the CLI and the service must accept identical
// documents), enforcing the service resource ceilings.
func (s *Server) decodeSpec(r *http.Request) ([]htuning.Problem, bool, error) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, false, err
	}
	problems, batch, err := spec.Parse(raw, s.buildOpts())
	if err != nil {
		return nil, false, err
	}
	if len(problems) > maxRequestProblems {
		return nil, false, fmt.Errorf("batch of %d problems above the %d-instance service limit; split it", len(problems), maxRequestProblems)
	}
	totalBudget := 0
	for i, p := range problems {
		if _, err := checkProblemLimits(i, p); err != nil {
			return nil, false, err
		}
		if p.Budget > 0 {
			totalBudget += p.Budget
		}
		if totalBudget > maxRequestBudget {
			return nil, false, fmt.Errorf("batch budgets sum past the %d-unit service limit; split it", maxRequestBudget)
		}
	}
	return problems, batch, nil
}

// SolveResult is one tuned instance in a solve response.
type SolveResult struct {
	Prices    []int   `json:"prices"`
	Objective float64 `json:"objective"`
	Spent     int     `json:"spent"`
}

// SolveResponse is the /v1/solve reply; Results aligns with the request
// order (a single-instance spec yields one result and Batch=false).
type SolveResponse struct {
	Batch   bool          `json:"batch"`
	Results []SolveResult `json:"results"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	// Admission precedes the body read: a rejected request must cost a
	// permit check, not a 32 MB buffer and a spec materialization.
	if !s.admitBulk(w) {
		return
	}
	defer s.gate.Release(traffic.Bulk)
	problems, batch, err := s.decodeSpec(r)
	if err != nil {
		writeError(w, badRequestStatus(err), "%v", err)
		return
	}
	results, err := engine.SolveBatch(s.est, problems, engine.Options{Workers: s.cfg.Workers})
	if err != nil {
		// Engine errors report as 400 by design: every solver input —
		// shapes, budgets, rate models — derives verbatim from the
		// request body, so failures (including quadrature breakdowns)
		// are parameter-driven, not server state.
		writeError(w, http.StatusBadRequest, "solve: %v", err)
		return
	}
	s.solves.Add(uint64(len(problems)))
	resp := SolveResponse{Batch: batch, Results: make([]SolveResult, len(results))}
	for i, res := range results {
		resp.Results[i] = SolveResult{Prices: res.Prices, Objective: res.Objective, Spent: res.Spent}
	}
	writeJSON(w, http.StatusOK, resp)
}

// HeterogeneousResult is one tuned Scenario III instance.
type HeterogeneousResult struct {
	Prices    []int   `json:"prices"`
	O1        float64 `json:"o1"`
	O2        float64 `json:"o2"`
	UtopiaO1  float64 `json:"utopiaO1"`
	UtopiaO2  float64 `json:"utopiaO2"`
	Closeness float64 `json:"closeness"`
	Spent     int     `json:"spent"`
}

// HeterogeneousResponse is the /v1/solve-heterogeneous reply.
type HeterogeneousResponse struct {
	Batch   bool                  `json:"batch"`
	Results []HeterogeneousResult `json:"results"`
}

func (s *Server) handleSolveHeterogeneous(w http.ResponseWriter, r *http.Request) {
	if !s.admitBulk(w) {
		return
	}
	defer s.gate.Release(traffic.Bulk)
	problems, batch, err := s.decodeSpec(r)
	if err != nil {
		writeError(w, badRequestStatus(err), "%v", err)
		return
	}
	results, err := engine.SolveHeterogeneousBatch(s.est, problems, engine.Options{Workers: s.cfg.Workers})
	if err != nil {
		writeError(w, http.StatusBadRequest, "solve: %v", err)
		return
	}
	s.solves.Add(uint64(len(problems)))
	resp := HeterogeneousResponse{Batch: batch, Results: make([]HeterogeneousResult, len(results))}
	for i, res := range results {
		resp.Results[i] = HeterogeneousResult{
			Prices: res.Prices, O1: res.O1, O2: res.O2,
			UtopiaO1: res.Utopia.O1, UtopiaO2: res.Utopia.O2,
			Closeness: res.Closeness, Spent: res.Spent,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// SimulateProblem is one instance to score: a spec problem plus the
// uniform per-group prices of the allocation.
type SimulateProblem struct {
	Budget int          `json:"budget"`
	Groups []spec.Group `json:"groups"`
	Prices []int        `json:"prices"`
}

// SimulateRequest is the /v1/simulate body: a single instance (Budget,
// Groups, Prices) or a batch (Problems), plus sampling parameters.
type SimulateRequest struct {
	SimulateProblem
	Problems []SimulateProblem `json:"problems"`
	// Trials per instance (default 2000, max 10M).
	Trials int `json:"trials"`
	// Seed makes the run reproducible; equal requests give equal replies.
	Seed uint64 `json:"seed"`
	// Phase is "both" (default, wall clock) or "onhold".
	Phase string `json:"phase"`
}

// SimulateResponse is the /v1/simulate reply, latencies in request order.
type SimulateResponse struct {
	Batch     bool      `json:"batch"`
	Trials    int       `json:"trials"`
	Phase     string    `json:"phase"`
	Latencies []float64 `json:"latencies"`
}

func parsePhase(s string) (htuning.Phase, string, error) {
	switch s {
	case "", "both":
		return htuning.PhaseBoth, "both", nil
	case "onhold":
		return htuning.PhaseOnHold, "onhold", nil
	}
	return 0, "", fmt.Errorf("unknown phase %q (want \"both\" or \"onhold\")", s)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	// Admission precedes the body read and the per-repetition allocation
	// materialization, matching the solve handlers: a rejected request
	// costs a permit check, not a 32 MB parse.
	if !s.admitBulk(w) {
		return
	}
	defer s.gate.Release(traffic.Bulk)
	var req SimulateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestStatus(err), "parse request: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "parse request: trailing data after the request document")
		return
	}
	instances := req.Problems
	batch := true
	if len(instances) == 0 {
		instances = []SimulateProblem{req.SimulateProblem}
		batch = false
	} else if len(req.Groups) > 0 || req.Budget != 0 || len(req.SimulateProblem.Prices) > 0 {
		writeError(w, http.StatusBadRequest, "%v", spec.ErrMixedShapes)
		return
	}
	trials := req.Trials
	if trials == 0 {
		trials = defaultTrials
	}
	if trials < 1 || trials > maxTrials {
		writeError(w, http.StatusBadRequest, "trials %d outside [1, %d]", req.Trials, maxTrials)
		return
	}
	phase, phaseName, err := parsePhase(req.Phase)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := s.buildOpts()
	items := make([]engine.SimulateItem, len(instances))
	totalReps := 0
	for i, inst := range instances {
		if len(inst.Groups) == 0 {
			writeError(w, http.StatusBadRequest, "problem %d: no groups", i)
			return
		}
		sp := spec.Problem{Budget: inst.Budget, Groups: inst.Groups}
		p, err := sp.Build(opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "problem %d: %v", i, err)
			return
		}
		// Size checks and model validation must precede the per-task
		// allocation below, which materializes Σ tasks × reps ints.
		reps, err := checkProblemLimits(i, p)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := p.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "problem %d: %v", i, err)
			return
		}
		totalReps += reps
		if totalReps > maxRequestReps {
			writeError(w, http.StatusBadRequest,
				"simulate request totals more than %d repetitions (service limit); split the batch", maxRequestReps)
			return
		}
		if totalReps > maxSimulateWork/trials {
			writeError(w, http.StatusBadRequest,
				"simulate request needs %d × %d+ samples, above the %d service limit; lower trials or split the batch",
				trials, totalReps, maxSimulateWork)
			return
		}
		alloc, err := htuning.NewUniformAllocation(p, inst.Prices)
		if err != nil {
			writeError(w, http.StatusBadRequest, "problem %d: %v", i, err)
			return
		}
		items[i] = engine.SimulateItem{Problem: p, Allocation: alloc}
	}
	lats, err := engine.SimulateBatch(items, phase, trials, req.Seed, engine.Options{Workers: s.cfg.Workers})
	if err != nil {
		writeError(w, http.StatusBadRequest, "simulate: %v", err)
		return
	}
	s.simulates.Add(uint64(len(items)))
	writeJSON(w, http.StatusOK, SimulateResponse{
		Batch: batch, Trials: trials, Phase: phaseName, Latencies: lats,
	})
}

// FitInfo describes the current linearity fit in responses.
type FitInfo struct {
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	R2        float64 `json:"r2"`
	// Prices is how many distinct price levels back the fit.
	Prices int `json:"prices"`
}

// IngestResponse is the /v1/ingest reply.
type IngestResponse struct {
	// Records accepted in this request.
	Records int `json:"records"`
	// TotalRecords accepted over the server's lifetime.
	TotalRecords uint64 `json:"totalRecords"`
	// Fit is the re-tuned model, present once two price levels have
	// been observed.
	Fit *FitInfo `json:"fit,omitempty"`
	// FitPending explains why no fit was produced (e.g. only one price
	// level observed so far); the previous fit, if any, stays live.
	FitPending string `json:"fitPending,omitempty"`
}

// handleIngest folds trace records into the per-price aggregates,
// re-runs the MLE + linearity fit, and publishes the new model
// atomically. The body is CSV (Content-Type text/csv) or JSON Lines
// (anything else) in the trace package's wire formats. Ingest has its
// own small admission gate rather than sharing the solve gate: solve
// traffic must not starve re-tuning, but an upload holds a few times
// its body size while parsing, so unbounded concurrency would be an
// OOM vector.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// Two permits: a priority-class slot on the main gate (never starved
	// by bulk traffic — the bulk cap keeps reserve permits free) and the
	// ingest-specific memory cap.
	if !s.admitPriority(w, "ingest") {
		return
	}
	defer s.gate.Release(traffic.Priority)
	if !s.ingestGate.TryAcquire() {
		writeOverloaded(w, overloadRetry,
			"server at ingest capacity (%d uploads parsing); retry shortly", s.ingestGate.Limit())
		return
	}
	defer s.ingestGate.Release()
	recs, err := readTraceBody(r)
	if err != nil {
		writeError(w, badRequestStatus(err), "%v", err)
		return
	}
	if len(recs) == 0 {
		writeError(w, http.StatusBadRequest, "no trace records in body")
		return
	}
	// Validate and fold the whole batch into local deltas before touching
	// shared state: a rejected request must not half-commit its records
	// (aggregates have no subtract, so a partial merge would double-count
	// on retry). Folding straight into the O(#prices) sufficient
	// statistic avoids buffering a second copy of every duration.
	deltas := make(map[int]inference.PriceAggregate)
	for _, rec := range recs {
		if rec.Price < 1 {
			writeError(w, http.StatusBadRequest, "record %q rep %d: price %d below 1 unit (model domain is c >= 1)", rec.TaskID, rec.Rep, rec.Price)
			return
		}
		d := rec.OnHold()
		// Finite and non-negative: one +Inf duration would push the
		// price's add-only Total to +Inf and zero its MLE rate forever.
		if !(d >= 0) || math.IsInf(d, 1) {
			writeError(w, http.StatusBadRequest, "record %q rep %d: on-hold duration %v is not a finite non-negative number", rec.TaskID, rec.Rep, d)
			return
		}
		agg := deltas[rec.Price]
		agg.Add(1, d)
		deltas[rec.Price] = agg
	}
	resp := IngestResponse{Records: len(recs)}

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	newLevels := 0
	for price := range deltas {
		if _, ok := s.aggs[price]; !ok {
			newLevels++
		}
	}
	if len(s.aggs)+newLevels > maxPriceLevels {
		writeError(w, http.StatusBadRequest,
			"ingest would track %d distinct price levels, above the %d service limit", len(s.aggs)+newLevels, maxPriceLevels)
		return
	}
	// Validate every merged total before committing any: finite records
	// can still sum past the float64 range, and an add-only +Inf total
	// would zero that price's MLE rate for the life of the process.
	for price, delta := range deltas {
		if math.IsInf(s.aggs[price].Total+delta.Total, 1) {
			writeError(w, http.StatusBadRequest,
				"durations at price %d sum past the float64 range", price)
			return
		}
	}
	for price, delta := range deltas {
		agg := s.aggs[price]
		agg.Add(delta.N, delta.Total)
		s.aggs[price] = agg
	}
	resp.TotalRecords = s.records.Add(uint64(len(recs)))
	s.ingests.Add(1)
	var published *fitState
	if res, err := inference.FitAggregates(s.aggs); err != nil {
		// No usable fit yet (e.g. observations at fewer than two price
		// levels): keep serving the previous fit, tell the client why.
		resp.FitPending = err.Error()
	} else if cand, reason := guardFit(res.Fit, len(res.Prices)); cand == nil {
		// A noisy trace can least-squares into a decreasing or
		// non-positive rate line, which violates the RateModel contract
		// every solver assumes (positive, non-decreasing for c >= 1).
		// Keep the previous fit live rather than publish a broken one.
		resp.FitPending = reason
	} else {
		published = cand
		s.fit.Store(published)
		resp.Fit = &FitInfo{Slope: res.Fit.Slope, Intercept: res.Fit.Intercept, R2: res.Fit.R2, Prices: published.prices}
	}
	if s.st != nil {
		// Journal while still holding ingestMu, so WAL order matches
		// commit order. The aggregates were committed above either way —
		// a store failure (sticky, logged via its OnError hook) degrades
		// durability, not the live fit.
		_ = s.st.AppendIngest(deltas, len(recs))
		if published != nil {
			_ = s.st.AppendFit(store.FitRecord{
				Slope: published.fit.Slope, Intercept: published.fit.Intercept,
				R2: published.fit.R2, SE: published.fit.SE, N: published.fit.N,
				Prices: published.prices,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// readTraceBody decodes the ingest body per Content-Type. The media
// type is parsed so parameters ("text/csv; charset=utf-8") don't
// misroute a CSV body to the JSONL reader.
func readTraceBody(r *http.Request) ([]market.RepRecord, error) {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err == nil && mt == "text/csv" {
		return trace.ReadCSV(r.Body)
	}
	return trace.ReadJSONL(r.Body)
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	Cache     htuning.CacheStats `json:"cache"`
	Serve     ServeStats         `json:"serve"`
	Campaigns campaign.Stats     `json:"campaigns"`
	Fit       *FitInfo           `json:"fit"`
}

// ServeStats are the request-level counters.
type ServeStats struct {
	Solves          uint64 `json:"solves"`
	Simulates       uint64 `json:"simulates"`
	Ingests         uint64 `json:"ingests"`
	IngestedRecords uint64 `json:"ingestedRecords"`
	Rejected        uint64 `json:"rejected"`
	IngestRejected  uint64 `json:"ingestRejected"`
	InFlight        int    `json:"inFlight"`
	MaxInFlight     int    `json:"maxInFlight"`
	// Workers is the engine pool width per admitted batch, so
	// MaxInFlight × Workers bounds total solver concurrency.
	Workers int `json:"workers"`
}

// serveStats builds the request-level counter block shared by /v1/stats
// and /v1/metrics.
func (s *Server) serveStats() ServeStats {
	return ServeStats{
		Solves:          s.solves.Load(),
		Simulates:       s.simulates.Load(),
		Ingests:         s.ingests.Load(),
		IngestedRecords: s.records.Load(),
		Rejected:        s.gate.Rejected(),
		IngestRejected:  s.ingestGate.Rejected(),
		InFlight:        s.gate.InFlight(),
		MaxInFlight:     s.gate.Limit(),
		Workers:         engine.Options{Workers: s.cfg.Workers}.ResolvedWorkers(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Cache:     s.est.CacheStats(),
		Campaigns: s.campaigns.Stats(),
		Serve:     s.serveStats(),
	}
	if f := s.fit.Load(); f != nil {
		resp.Fit = &FitInfo{Slope: f.fit.Slope, Intercept: f.fit.Intercept, R2: f.fit.R2, Prices: f.prices}
	}
	writeJSON(w, http.StatusOK, resp)
}
