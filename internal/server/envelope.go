package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Stable machine-readable error codes. Every non-2xx reply from the /v1
// surface carries exactly one of these in its envelope; clients branch
// on the code, never on message text. Documented in doc.go and README.
const (
	// CodeOverloaded: admission or campaign capacity exhausted (503).
	// Back off for the reply's retry_after_ms and retry.
	CodeOverloaded = "overloaded"
	// CodeRateLimited: the client exceeded its per-client rate (429);
	// retry_after_ms is computed from the client's token bucket.
	CodeRateLimited = "rate_limited"
	// CodeBadSpec: the request body failed parsing, validation or a
	// resource ceiling (400); retrying unchanged cannot succeed.
	CodeBadSpec = "bad_spec"
	// CodeTooLarge: the request body exceeded the byte cap (413).
	CodeTooLarge = "too_large"
	// CodeNotFound: unknown route or campaign id (404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the route exists, the method does not (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeSuspended: the server is draining and no longer accepts this
	// work (503 on campaign starts during shutdown); retrying against a
	// live replica may succeed, retrying here will not.
	CodeSuspended = "suspended"
	// CodeCompacted: the requested WAL tail was compacted into a
	// snapshot (410 on /v1/replication/wal); refetch the full state from
	// /v1/replication/state and resume shipping from its sequence.
	CodeCompacted = "compacted"
	// CodeInternal: an unexpected server-side failure (5xx fallback).
	CodeInternal = "internal"
)

// APIError is the uniform error envelope body: a stable Code to branch
// on, a human-readable Message, and — on overload and rate-limit
// replies — how long to wait before retrying.
type APIError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the uniform non-2xx reply document:
// {"error":{"code","message","retry_after_ms"}}.
type ErrorEnvelope struct {
	Error APIError `json:"error"`
}

// CodeForStatus maps an HTTP status to its default error code — unique
// except for 503, where capacity replies (overloaded) are written
// explicitly and only drain-time replies fall through to this map.
// Exported for the cluster router, whose own errors (unknown node,
// unreachable node) must carry the same envelope codes as the nodes it
// fronts.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadSpec
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusTooManyRequests:
		return CodeRateLimited
	case http.StatusGone:
		return CodeCompacted
	case http.StatusServiceUnavailable:
		return CodeOverloaded
	}
	if status >= 400 && status < 500 {
		return CodeBadSpec
	}
	return CodeInternal
}

// writeEnvelope writes the uniform error envelope. retry, when
// positive, is rounded up to whole milliseconds in the body and whole
// seconds in the Retry-After header (the header's granularity).
func writeEnvelope(w http.ResponseWriter, status int, code string, retry time.Duration, format string, args ...any) {
	e := APIError{Code: code, Message: fmt.Sprintf(format, args...)}
	if retry > 0 {
		e.RetryAfterMS = int64((retry + time.Millisecond - 1) / time.Millisecond)
		secs := (retry + time.Second - 1) / time.Second
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, status, ErrorEnvelope{Error: e})
}

// writeError writes the envelope with the status's default code and no
// retry hint; the status keeps its historical meaning (400 bad_spec,
// 404 not_found, 413 too_large).
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeEnvelope(w, status, CodeForStatus(status), 0, format, args...)
}

// writeOverloaded writes the 503 capacity reply with a retry hint.
func writeOverloaded(w http.ResponseWriter, retry time.Duration, format string, args ...any) {
	writeEnvelope(w, http.StatusServiceUnavailable, CodeOverloaded, retry, format, args...)
}

// writeSuspended writes the 503 drain-time reply (no retry hint: this
// process is going away).
func writeSuspended(w http.ResponseWriter, format string, args ...any) {
	writeEnvelope(w, http.StatusServiceUnavailable, CodeSuspended, 0, format, args...)
}

// maxInterceptBody caps how much of an intercepted plain-text error
// body is preserved as the envelope message.
const maxInterceptBody = 256

// envelopeWriter wraps every response so (1) the final status and byte
// count are observable for histograms and the access log, and (2) any
// non-2xx reply written without a JSON body — the ServeMux's own
// plain-text 404/405 replies — is rewritten into the uniform envelope.
// Handlers that write the envelope themselves set Content-Type
// application/json first and pass through untouched.
type envelopeWriter struct {
	rw          http.ResponseWriter
	status      int
	bytes       int64
	wrote       bool
	intercept   bool
	intercepted []byte
}

func (w *envelopeWriter) Header() http.Header { return w.rw.Header() }

func (w *envelopeWriter) WriteHeader(status int) {
	if w.wrote {
		return
	}
	w.wrote = true
	w.status = status
	if status >= 400 && !strings.HasPrefix(w.rw.Header().Get("Content-Type"), "application/json") {
		// A plain-text error from outside our handlers: swap the body for
		// the envelope. Headers must change before they go out.
		w.intercept = true
		h := w.rw.Header()
		h.Set("Content-Type", "application/json")
		h.Del("Content-Length")
	}
	w.rw.WriteHeader(status)
}

func (w *envelopeWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercept {
		// Swallow the original body (keeping a prefix as the message);
		// finish() writes the envelope after the handler returns.
		if room := maxInterceptBody - len(w.intercepted); room > 0 {
			if len(p) > room {
				p = p[:room]
			}
			w.intercepted = append(w.intercepted, p...)
		}
		return len(p), nil
	}
	n, err := w.rw.Write(p)
	w.bytes += int64(n)
	return n, err
}

// finish completes an intercepted reply: the original plain-text body
// becomes the envelope message under the status's default code.
func (w *envelopeWriter) finish() {
	if !w.intercept {
		return
	}
	msg := strings.TrimSpace(string(w.intercepted))
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	enc, err := json.Marshal(ErrorEnvelope{Error: APIError{Code: CodeForStatus(w.status), Message: msg}})
	if err != nil {
		return
	}
	enc = append(enc, '\n')
	n, _ := w.rw.Write(enc)
	w.bytes += int64(n)
	w.intercept = false
}

// Status is the response status, defaulting to 200 when the handler
// never called WriteHeader explicitly.
func (w *envelopeWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
