package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hputune/internal/engine"
	"hputune/internal/htuning"
	"hputune/internal/market"
	"hputune/internal/spec"
	"hputune/internal/trace"
	"hputune/internal/traffic"
)

// specJSON builds a single-instance spec document whose shape varies
// with variant, so concurrent clients exercise distinct cache keys.
func specJSON(variant int) string {
	budget := 200 + 40*(variant%7)
	tasks := 3 + variant%4
	reps := 1 + variant%3
	k := 1 + variant%3
	return fmt.Sprintf(`{
	  "budget": %d,
	  "groups": [
	    {"name": "a", "tasks": %d, "reps": %d, "procRate": 2.0,
	     "model": {"kind": "linear", "k": %d, "b": 1}},
	    {"name": "b", "tasks": 4, "reps": 2, "procRate": 2.0,
	     "model": {"kind": "linear", "k": 2, "b": 1}}
	  ]
	}`, budget, tasks, reps, k)
}

// directSolve is the in-process reference the HTTP path must match.
func directSolve(t *testing.T, doc string) htuning.RepetitionResult {
	t.Helper()
	problems, _, err := spec.Parse([]byte(doc), spec.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.SolveBatch(htuning.NewEstimator(), problems, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return results[0]
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getStats(t *testing.T, base string) StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSolveMatchesDirectBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := specJSON(0)
	want := directSolve(t, doc)
	resp, raw := postJSON(t, ts.URL+"/v1/solve", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got SolveResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Batch || len(got.Results) != 1 {
		t.Fatalf("unexpected shape: %+v", got)
	}
	res := got.Results[0]
	if fmt.Sprint(res.Prices) != fmt.Sprint(want.Prices) {
		t.Errorf("HTTP prices %v != direct SolveBatch prices %v", res.Prices, want.Prices)
	}
	if res.Objective != want.Objective || res.Spent != want.Spent {
		t.Errorf("HTTP result (%v, %d) != direct (%v, %d)", res.Objective, res.Spent, want.Objective, want.Spent)
	}
}

func TestSolveBatchSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := fmt.Sprintf(`{"problems": [%s, %s]}`,
		strings.TrimSpace(specJSON(1)), strings.TrimSpace(specJSON(2)))
	resp, raw := postJSON(t, ts.URL+"/v1/solve", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got SolveResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Batch || len(got.Results) != 2 {
		t.Fatalf("unexpected shape: %+v", got)
	}
	for i, doc := range []string{specJSON(1), specJSON(2)} {
		want := directSolve(t, doc)
		if fmt.Sprint(got.Results[i].Prices) != fmt.Sprint(want.Prices) {
			t.Errorf("problem %d: HTTP prices %v != direct %v", i, got.Results[i].Prices, want.Prices)
		}
	}
}

func TestSolveHeterogeneous(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := `{
	  "budget": 300,
	  "groups": [
	    {"name": "a", "tasks": 4, "reps": 2, "procRate": 2.0,
	     "model": {"kind": "linear", "k": 1, "b": 1}},
	    {"name": "b", "tasks": 3, "reps": 3, "procRate": 5.0,
	     "model": {"kind": "linear", "k": 2, "b": 1}}
	  ]
	}`
	problems, _, err := spec.Parse([]byte(doc), spec.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := engine.SolveHeterogeneousBatch(htuning.NewEstimator(), problems, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes[0]
	resp, raw := postJSON(t, ts.URL+"/v1/solve-heterogeneous", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got HeterogeneousResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	res := got.Results[0]
	if fmt.Sprint(res.Prices) != fmt.Sprint(want.Prices) {
		t.Errorf("HTTP prices %v != direct %v", res.Prices, want.Prices)
	}
	if res.Closeness != want.Closeness || res.O1 != want.O1 || res.O2 != want.O2 {
		t.Errorf("HTTP diagnostics (%v, %v, %v) != direct (%v, %v, %v)",
			res.O1, res.O2, res.Closeness, want.O1, want.O2, want.Closeness)
	}
}

func TestSimulateDeterministicOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
	  "budget": 120,
	  "groups": [
	    {"name": "a", "tasks": 3, "reps": 2, "procRate": 2.0,
	     "model": {"kind": "linear", "k": 1, "b": 1}}
	  ],
	  "prices": [20],
	  "trials": 500,
	  "seed": 42
	}`
	resp1, raw1 := postJSON(t, ts.URL+"/v1/simulate", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, raw1)
	}
	_, raw2 := postJSON(t, ts.URL+"/v1/simulate", body)
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("same simulate request, different replies: %s vs %s", raw1, raw2)
	}
	var got SimulateResponse
	if err := json.Unmarshal(raw1, &got); err != nil {
		t.Fatal(err)
	}
	if got.Batch || len(got.Latencies) != 1 || !(got.Latencies[0] > 0) {
		t.Fatalf("unexpected simulate reply: %+v", got)
	}
	// And identical to the in-process engine path.
	problems, _, err := spec.Parse([]byte(`{"budget":120,"groups":[{"name":"a","tasks":3,"reps":2,"procRate":2.0,"model":{"kind":"linear","k":1,"b":1}}]}`), spec.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := htuning.NewUniformAllocation(problems[0], []int{20})
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.SimulateBatch([]engine.SimulateItem{{Problem: problems[0], Allocation: alloc}},
		htuning.PhaseBoth, 500, 42, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Latencies[0] != want[0] {
		t.Errorf("HTTP latency %v != engine latency %v", got.Latencies[0], want[0])
	}
}

// ingestBody builds a JSONL trace whose MLE at price c is exactly
// rate(c) = 2c+1: n records per price, each with on-hold 1/rate.
func ingestBody(t *testing.T, prices []int, perPrice int) string {
	t.Helper()
	var recs []market.RepRecord
	for _, c := range prices {
		rate := 2*float64(c) + 1
		for i := 0; i < perPrice; i++ {
			recs = append(recs, market.RepRecord{
				TaskID:   fmt.Sprintf("t%d-%d", c, i),
				Rep:      1,
				Price:    c,
				PostedAt: 0,
				Accepted: 1 / rate,
				Done:     1/rate + 0.5,
				WorkerID: i,
				Correct:  true,
			})
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestIngestRetunesFittedModel(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	fittedSpec := `{
	  "budget": 200,
	  "groups": [
	    {"name": "a", "tasks": 4, "reps": 2, "procRate": 2.0,
	     "model": {"kind": "fitted"}}
	  ]
	}`
	// Before any ingest the fitted model must be rejected.
	resp, raw := postJSON(t, ts.URL+"/v1/solve", fittedSpec)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fitted solve before ingest: status %d: %s", resp.StatusCode, raw)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/ingest", ingestBody(t, []int{1, 2, 4, 8}, 50))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, raw)
	}
	var ing IngestResponse
	if err := json.Unmarshal(raw, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Records != 200 || ing.Fit == nil {
		t.Fatalf("unexpected ingest reply: %s", raw)
	}
	if diff := ing.Fit.Slope - 2; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("fit slope %v, want ~2", ing.Fit.Slope)
	}

	// A fitted solve now works and matches a direct solve under the
	// exact same linear model the server fitted.
	resp, raw = postJSON(t, ts.URL+"/v1/solve", fittedSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fitted solve after ingest: status %d: %s", resp.StatusCode, raw)
	}
	var got SolveResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	model, ok := s.Fit()
	if !ok {
		t.Fatal("server reports no fit after ingest")
	}
	p := htuning.Problem{
		Budget: 200,
		Groups: []htuning.Group{{
			Type:  &htuning.TaskType{Name: "a", Accept: model, ProcRate: 2.0},
			Tasks: 4, Reps: 2,
		}},
	}
	want, err := engine.SolveBatch(htuning.NewEstimator(), []htuning.Problem{p}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Results[0].Prices) != fmt.Sprint(want[0].Prices) {
		t.Errorf("fitted HTTP prices %v != direct prices %v", got.Results[0].Prices, want[0].Prices)
	}

	// A second ingest at new prices swaps the fit atomically.
	resp, raw = postJSON(t, ts.URL+"/v1/ingest", ingestBody(t, []int{3, 5}, 30))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second ingest status %d: %s", resp.StatusCode, raw)
	}
	st := getStats(t, ts.URL)
	if st.Serve.Ingests != 2 || st.Serve.IngestedRecords != 260 {
		t.Errorf("ingest counters = %+v, want 2 ingests / 260 records", st.Serve)
	}
	if st.Fit == nil || st.Fit.Prices != 6 {
		t.Errorf("stats fit = %+v, want 6 price levels", st.Fit)
	}
}

// TestIngestRejectsDecreasingFit pins the rate-model contract: a trace
// where higher pay looked slower must not publish a decreasing fit, and
// the previous valid fit must stay live.
func TestIngestRejectsDecreasingFit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Valid increasing fit first (rate(c) = 2c+1).
	resp, raw := postJSON(t, ts.URL+"/v1/ingest", ingestBody(t, []int{1, 2}, 20))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest status %d: %s", resp.StatusCode, raw)
	}
	before, ok := s.Fit()
	if !ok {
		t.Fatal("no fit after valid ingest")
	}
	// Now swamp it with records where price 20 looks much slower than
	// everything seen so far: on-hold 100 per record at price 20 drags
	// the least-squares slope negative.
	var recs []market.RepRecord
	for i := 0; i < 400; i++ {
		recs = append(recs, market.RepRecord{
			TaskID: fmt.Sprintf("slow%d", i), Rep: 1, Price: 20,
			PostedAt: 0, Accepted: 100, Done: 101, WorkerID: i,
		})
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/ingest", buf.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second ingest status %d: %s", resp.StatusCode, raw)
	}
	var ing IngestResponse
	if err := json.Unmarshal(raw, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Fit != nil || ing.FitPending == "" {
		t.Fatalf("decreasing fit was published: %s", raw)
	}
	after, ok := s.Fit()
	if !ok || after != before {
		t.Errorf("previous fit not retained: %+v vs %+v", after, before)
	}
}

// TestIngestPriceLevelCap pins the bounded-memory contract: a hostile
// upload spraying distinct price levels is rejected wholesale once the
// tracked-level cap would be exceeded.
func TestIngestPriceLevelCap(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var sb strings.Builder
	for c := 1; c <= 5000; c++ {
		fmt.Fprintf(&sb, `{"task_id":"t%d","rep":1,"price":%d,"posted_at":0,"accepted":0.5,"done":1,"worker_id":1,"correct":true}`+"\n", c, c)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/ingest", sb.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %.200s", resp.StatusCode, raw)
	}
	if st := getStats(t, ts.URL); st.Serve.IngestedRecords != 0 {
		t.Errorf("rejected over-cap ingest committed %d records", st.Serve.IngestedRecords)
	}
}

// TestIngestRejectionCommitsNothing pins the all-or-nothing contract: a
// body whose tail record is invalid must not fold its valid head into
// the aggregates (retries would double-count).
func TestIngestRejectionCommitsNothing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	good := strings.TrimSuffix(ingestBody(t, []int{1, 2}, 5), "\n")
	bad := good + "\n" + `{"task_id":"x","rep":1,"price":3,"posted_at":5,"accepted":1,"done":6,"worker_id":1,"correct":true}`
	resp, raw := postJSON(t, ts.URL+"/v1/ingest", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
	st := getStats(t, ts.URL)
	if st.Serve.IngestedRecords != 0 || st.Fit != nil {
		t.Errorf("rejected ingest left state behind: %+v, fit %+v", st.Serve, st.Fit)
	}
}

func TestIngestCSV(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var recs []market.RepRecord
	for _, c := range []int{2, 6} {
		for i := 0; i < 10; i++ {
			recs = append(recs, market.RepRecord{
				TaskID: fmt.Sprintf("t%d", i), Rep: 1, Price: c,
				PostedAt: 0, Accepted: 0.25, Done: 0.5, WorkerID: i,
			})
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("CSV ingest status %d: %s", resp.StatusCode, raw)
	}
	var ing IngestResponse
	if err := json.Unmarshal(raw, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Records != 20 || ing.Fit == nil {
		t.Errorf("unexpected CSV ingest reply: %s", raw)
	}
}

func TestOverloadReturns503(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	// Hold the only permit so the next request is turned away.
	if !s.gate.TryAcquire(traffic.Bulk) {
		t.Fatal("could not take the only permit")
	}
	defer s.gate.Release(traffic.Bulk)
	resp, raw := postJSON(t, ts.URL+"/v1/solve", specJSON(0))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	st := getStats(t, ts.URL)
	if st.Serve.Rejected == 0 {
		t.Error("rejection not counted in stats")
	}
}

func TestIngestOverloadReturns503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var held int
	for s.ingestGate.TryAcquire() {
		held++
	}
	defer func() {
		for ; held > 0; held-- {
			s.ingestGate.Release()
		}
	}()
	resp, raw := postJSON(t, ts.URL+"/v1/ingest", ingestBody(t, []int{1, 2}, 2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
	}
	if st := getStats(t, ts.URL); st.Serve.IngestRejected == 0 {
		t.Error("ingest rejection not counted in stats")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"bad json", "/v1/solve", `{"budget": `},
		{"no groups", "/v1/solve", `{"budget": 100}`},
		{"mixed shapes", "/v1/solve", `{"budget": 1, "groups": [{"name":"a","tasks":1,"reps":1,"procRate":1,"model":{"kind":"log"}}], "problems": [{}]}`},
		{"nested batch", "/v1/solve", `{"problems": [{"problems": [{}]}]}`},
		{"unknown model", "/v1/solve", `{"budget": 10, "groups": [{"name":"a","tasks":1,"reps":1,"procRate":1,"model":{"kind":"nope"}}]}`},
		{"budget too small", "/v1/solve", `{"budget": 1, "groups": [{"name":"a","tasks":5,"reps":5,"procRate":1,"model":{"kind":"log"}}]}`},
		{"unknown sim phase", "/v1/simulate", `{"budget":120,"groups":[{"name":"a","tasks":3,"reps":2,"procRate":2,"model":{"kind":"log"}}],"prices":[20],"phase":"nope"}`},
		{"sim trailing data", "/v1/simulate", `{"budget":120,"groups":[{"name":"a","tasks":3,"reps":2,"procRate":2,"model":{"kind":"log"}}],"prices":[20]} {"budget":9}`},
		{"solve trailing data", "/v1/solve", `{"budget":120,"groups":[{"name":"a","tasks":3,"reps":2,"procRate":2,"model":{"kind":"log"}}]} {"budget":9}`},
		{"sim trials too big", "/v1/simulate", `{"budget":120,"groups":[{"name":"a","tasks":3,"reps":2,"procRate":2,"model":{"kind":"log"}}],"prices":[20],"trials":999999999}`},
		{"sim mixed shapes", "/v1/simulate", `{"budget":120,"groups":[{"name":"a","tasks":3,"reps":2,"procRate":2,"model":{"kind":"log"}}],"prices":[20],"problems":[{"budget":1}]}`},
		{"empty ingest", "/v1/ingest", ""},
		{"garbage ingest", "/v1/ingest", "{not json lines"},
		{"ingest price below 1", "/v1/ingest", `{"task_id":"a","rep":1,"price":0,"posted_at":0,"accepted":1,"done":2,"worker_id":1,"correct":true}`},
		{"ingest infinite duration", "/v1/ingest", `{"task_id":"a","rep":1,"price":2,"posted_at":-1.7e308,"accepted":1.7e308,"done":1.7e308,"worker_id":1,"correct":true}`},
		{"ingest overflowing total", "/v1/ingest", `{"task_id":"a","rep":1,"price":2,"posted_at":0,"accepted":1e308,"done":1e308,"worker_id":1,"correct":true}` + "\n" + `{"task_id":"b","rep":1,"price":2,"posted_at":0,"accepted":1e308,"done":1e308,"worker_id":2,"correct":true}`},
		// Each instance dimension is in bounds, but budget × groups
		// explodes the greedy step count — must be a fast 400.
		{"solve work above limit", "/v1/solve", func() string {
			groups := make([]string, 100)
			for i := range groups {
				groups[i] = fmt.Sprintf(`{"name":"g%d","tasks":1,"reps":1,"procRate":1,"model":{"kind":"log"}}`, i)
			}
			return `{"budget":16777216,"groups":[` + strings.Join(groups, ",") + `]}`
		}()},
		{"solve budget above limit", "/v1/solve", `{"budget": 99999999, "groups": [{"name":"a","tasks":1,"reps":1,"procRate":1,"model":{"kind":"log"}}]}`},
		// Many max-budget instances must trip the request-wide budget
		// cap even though each instance is individually legal.
		{"solve batch budget above limit", "/v1/solve", func() string {
			inst := `{"budget":16777216,"groups":[{"name":"a","tasks":1,"reps":1,"procRate":1,"model":{"kind":"log"}}]}`
			insts := make([]string, 5)
			for i := range insts {
				insts[i] = inst
			}
			return `{"problems":[` + strings.Join(insts, ",") + `]}`
		}()},
		// A few hundred bytes asking for a multi-terabyte allocation:
		// must be a fast 400, not an OOM (the request would hang or
		// kill the process if the allocation were ever materialized).
		{"sim tasks above limit", "/v1/simulate", `{"budget":2000000000,"groups":[{"name":"a","tasks":2000000000,"reps":1,"procRate":1,"model":{"kind":"log"}}],"prices":[1]}`},
		{"sim work above limit", "/v1/simulate", `{"budget":4000000,"groups":[{"name":"a","tasks":1000000,"reps":4,"procRate":1,"model":{"kind":"log"}}],"prices":[1],"trials":10000000}`},
		// Many near-limit instances at trials:1 pass the work cap but
		// must hit the request-wide repetition (memory) cap before any
		// allocation is materialized.
		{"sim request reps above limit", "/v1/simulate", func() string {
			inst := `{"budget":4000000,"groups":[{"name":"a","tasks":4000000,"reps":1,"procRate":1,"model":{"kind":"log"}}],"prices":[1]}`
			return `{"trials":1,"problems":[` + inst + `,` + inst + `]}`
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400: %s", resp.StatusCode, raw)
			}
			var eb ErrorEnvelope
			if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Code == "" || eb.Error.Message == "" {
				t.Errorf("error body not a JSON error envelope: %s", raw)
			}
		})
	}
	// Method mismatches.
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve status %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestConcurrentClientsRaceFree is the acceptance test: >= 32 concurrent
// clients mixing solves, simulates, ingests and stats against a server
// whose estimator cache is deliberately tiny. Every HTTP solve must
// match the in-process SolveBatch result bit for bit, the cache must
// stay within its bound, and -race must stay silent while ingest
// re-tunes the fit mid-solve.
func TestConcurrentClientsRaceFree(t *testing.T) {
	const clients = 32
	const perClient = 4
	const cacheEntries = 256

	// Precompute the expected result for every spec variant.
	variants := make([]string, 8)
	want := make([]htuning.RepetitionResult, len(variants))
	for i := range variants {
		variants[i] = specJSON(i)
		want[i] = directSolve(t, variants[i])
	}

	// BulkShare 1 keeps every solve admitted at this concurrency (the
	// gate still reserves one priority permit); starvation behaviour is
	// covered by TestBulkFloodDoesNotStarveCampaigns.
	_, ts := newTestServer(t, Config{MaxInFlight: clients + 4, CacheEntries: cacheEntries,
		Traffic: TrafficConfig{BulkShare: 1}})
	client := ts.Client()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				switch {
				case c%4 == 3 && r%2 == 1:
					// Ingest while others solve: re-tunes the fit and
					// hammers the aggregates under the estimator load.
					resp, err := client.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
						strings.NewReader(ingestBody(t, []int{1 + c%3, 4 + r}, 5)))
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("client %d ingest status %d", c, resp.StatusCode)
					}
				default:
					v := (c + r) % len(variants)
					resp, err := client.Post(ts.URL+"/v1/solve", "application/json",
						strings.NewReader(variants[v]))
					if err != nil {
						t.Error(err)
						return
					}
					raw, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("client %d solve status %d: %s", c, resp.StatusCode, raw)
						return
					}
					var got SolveResponse
					if err := json.Unmarshal(raw, &got); err != nil {
						t.Error(err)
						return
					}
					if fmt.Sprint(got.Results[0].Prices) != fmt.Sprint(want[v].Prices) {
						t.Errorf("client %d variant %d: HTTP prices %v != direct %v",
							c, v, got.Results[0].Prices, want[v].Prices)
					}
					if got.Results[0].Objective != want[v].Objective {
						t.Errorf("client %d variant %d: objective %v != %v",
							c, v, got.Results[0].Objective, want[v].Objective)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	st := getStats(t, ts.URL)
	if st.Cache.Entries > st.Cache.Capacity {
		t.Errorf("cache entries %d exceed capacity %d", st.Cache.Entries, st.Cache.Capacity)
	}
	if st.Cache.Capacity > cacheEntries {
		t.Errorf("cache capacity %d above configured %d", st.Cache.Capacity, cacheEntries)
	}
	if st.Cache.Evictions == 0 {
		t.Error("no evictions under concurrent load on a tiny cache")
	}
	if st.Serve.Solves == 0 || st.Serve.Ingests == 0 {
		t.Errorf("counters did not move: %+v", st.Serve)
	}
	if st.Serve.InFlight != 0 {
		t.Errorf("in-flight %d at rest, want 0", st.Serve.InFlight)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown returned %v", err)
	}
	if _, err := http.Get(url + "/v1/healthz"); err == nil {
		t.Error("server still reachable after shutdown")
	}
}

func TestNegativeCacheEntriesFallsBackToDefault(t *testing.T) {
	s, err := New(Config{CacheEntries: -1})
	if err != nil {
		t.Fatalf("negative CacheEntries should fall back to default, got %v", err)
	}
	if got := s.Estimator().CacheStats().Capacity; got != 65536 {
		t.Errorf("fallback capacity = %d, want the 65536 default", got)
	}
}
