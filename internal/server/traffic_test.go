package server

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/store"
	"hputune/internal/traffic"
)

// doReq issues one request with optional headers and returns the
// response plus decoded envelope (zero when the body is not one).
func doReq(t *testing.T, method, url, body string, hdr map[string]string) (*http.Response, ErrorEnvelope, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := make([]byte, 0, 512)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		raw = append(raw, buf[:n]...)
		if err != nil {
			break
		}
	}
	var env ErrorEnvelope
	_ = json.Unmarshal(raw, &env)
	return resp, env, raw
}

// TestErrorEnvelopeParity asserts the satellite contract: every non-2xx
// path — handler rejections, mux-generated 404/405s, admission and
// rate-limit refusals, drain-time refusals — answers with the uniform
// {"error":{code,message,retry_after_ms}} envelope, a known stable
// code, and an X-Request-ID echo.
func TestErrorEnvelopeParity(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, Traffic: TrafficConfig{BulkShare: 0.5}})

	// Bad-spec solve must run before the permit grab below: admission
	// precedes parsing, so a held gate would mask the 400.
	if resp, env, raw := doReq(t, "POST", ts.URL+"/v1/solve", `{"budget": `, nil); resp.StatusCode != 400 || env.Error.Code != CodeBadSpec {
		t.Fatalf("bad solve spec: status %d code %q: %s", resp.StatusCode, env.Error.Code, raw)
	}

	// Occupy the single bulk permit so solve overloads deterministically.
	if s.gate.BulkLimit() != 1 {
		t.Fatalf("bulk limit = %d, want 1", s.gate.BulkLimit())
	}
	if !s.gate.TryAcquire(traffic.Bulk) {
		t.Fatal("could not take the bulk permit")
	}
	defer s.gate.Release(traffic.Bulk)
	// Drain the ingest gate for the ingest-overload case.
	var held int
	for s.ingestGate.TryAcquire() {
		held++
	}
	defer func() {
		for ; held > 0; held-- {
			s.ingestGate.Release()
		}
	}()

	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
		wantRetry                bool
	}{
		{"campaign bad spec", "POST", "/v1/campaigns", `{}`, 400, CodeBadSpec, false},
		{"unknown campaign", "GET", "/v1/campaigns/zzz", "", 404, CodeNotFound, false},
		{"cancel unknown campaign", "DELETE", "/v1/campaigns/zzz", "", 404, CodeNotFound, false},
		{"unknown route", "GET", "/v1/nope", "", 404, CodeNotFound, false},
		{"method not allowed", "GET", "/v1/solve", "", 405, CodeMethodNotAllowed, false},
		{"solve overloaded", "POST", "/v1/solve", specJSON(0), 503, CodeOverloaded, true},
		{"simulate overloaded", "POST", "/v1/simulate", `{"budget":10}`, 503, CodeOverloaded, true},
		{"ingest overloaded", "POST", "/v1/ingest", "x", 503, CodeOverloaded, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, env, raw := doReq(t, tc.method, ts.URL+tc.path, tc.body, nil)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			if env.Error.Code != tc.wantCode || env.Error.Message == "" {
				t.Errorf("envelope %+v, want code %q with a message: %s", env.Error, tc.wantCode, raw)
			}
			if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "application/json") {
				t.Errorf("Content-Type %q, want application/json", got)
			}
			if resp.Header.Get("X-Request-ID") == "" {
				t.Error("no X-Request-ID echo")
			}
			if tc.wantRetry && (env.Error.RetryAfterMS <= 0 || resp.Header.Get("Retry-After") == "") {
				t.Errorf("overload reply without retry hints: %s (Retry-After %q)", raw, resp.Header.Get("Retry-After"))
			}
		})
	}
}

// TestEnvelopeTooLargeAndSuspended covers the remaining codes, each
// needing its own server state: a body over the byte cap (413
// too_large) and a campaign start against a draining manager (503
// suspended).
func TestEnvelopeTooLargeAndSuspended(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	huge := strings.Repeat(" ", maxBodyBytes+1)
	resp, env, _ := doReq(t, "POST", ts.URL+"/v1/solve", huge, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || env.Error.Code != CodeTooLarge {
		t.Fatalf("oversized body: status %d code %q, want 413 %q", resp.StatusCode, env.Error.Code, CodeTooLarge)
	}

	s.campaigns.Close()
	resp, env, raw := doReq(t, "POST", ts.URL+"/v1/campaigns", repeCampaignSpec, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != CodeSuspended {
		t.Fatalf("draining start: status %d code %q (%s), want 503 %q", resp.StatusCode, env.Error.Code, raw, CodeSuspended)
	}
}

func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Client-supplied ids echo verbatim.
	resp, _, _ := doReq(t, "GET", ts.URL+"/v1/healthz", "", map[string]string{"X-Request-ID": "req-abc.123"})
	if got := resp.Header.Get("X-Request-ID"); got != "req-abc.123" {
		t.Errorf("echoed id %q, want req-abc.123", got)
	}
	// Absent or over-length ids are replaced with generated ones.
	resp1, _, _ := doReq(t, "GET", ts.URL+"/v1/healthz", "", nil)
	id1 := resp1.Header.Get("X-Request-ID")
	resp2, _, _ := doReq(t, "GET", ts.URL+"/v1/healthz", "", map[string]string{"X-Request-ID": strings.Repeat("x", 200)})
	id2 := resp2.Header.Get("X-Request-ID")
	if strings.Contains(id2, "xxx") {
		t.Errorf("over-length client id echoed back: %q", id2)
	}
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Errorf("generated ids %q, %q: want distinct non-empty", id1, id2)
	}
}

// TestRateLimitPerClient drives the token buckets over HTTP: a client
// that exhausts its burst gets 429 with a computed Retry-After, other
// clients are unaffected, and monitoring probes are exempt.
func TestRateLimitPerClient(t *testing.T) {
	_, ts := newTestServer(t, Config{Traffic: TrafficConfig{RatePerClient: 0.001, RateBurst: 2}})
	a := map[string]string{"X-Client-ID": "client-a"}
	for i := 0; i < 2; i++ {
		resp, _, raw := doReq(t, "GET", ts.URL+"/v1/stats", "", a)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d inside burst: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	resp, env, raw := doReq(t, "GET", ts.URL+"/v1/stats", "", a)
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != CodeRateLimited {
		t.Fatalf("over burst: status %d code %q: %s", resp.StatusCode, env.Error.Code, raw)
	}
	// At 0.001 req/s one token takes ~1000s; both hints must say so.
	if env.Error.RetryAfterMS < 900_000 {
		t.Errorf("retry_after_ms = %d, want ~1000000 (computed from bucket state)", env.Error.RetryAfterMS)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "1" {
		t.Errorf("Retry-After = %q, want a computed value", ra)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("rate-limited reply without X-Request-ID")
	}
	// Another client identity still has its own burst.
	if resp, _, _ := doReq(t, "GET", ts.URL+"/v1/stats", "", map[string]string{"X-Client-ID": "client-b"}); resp.StatusCode != http.StatusOK {
		t.Errorf("client-b throttled by client-a's bucket: %d", resp.StatusCode)
	}
	// Health and metrics probes are exempt however hard they're polled.
	for i := 0; i < 5; i++ {
		if resp, _, _ := doReq(t, "GET", ts.URL+"/v1/healthz", "", a); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz probe %d throttled: %d", i, resp.StatusCode)
		}
		if resp, _, _ := doReq(t, "GET", ts.URL+"/v1/metrics", "", a); resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics probe %d throttled: %d", i, resp.StatusCode)
		}
	}
}

// TestBulkFloodDoesNotStarveCampaigns is the two-class acceptance test:
// with every bulk permit pinned by a solve flood, a campaign fleet must
// still start, run every round and settle before its deadline, and
// ingest must still be admitted. Run with -race in CI.
func TestBulkFloodDoesNotStarveCampaigns(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, Workers: 1, Traffic: TrafficConfig{BulkShare: 0.5}})
	defer s.Close()

	// A live flood: hammer solve from more goroutines than the pool has
	// permits until the campaign settles.
	stop := make(chan struct{})
	var flooders sync.WaitGroup
	var admitted, rejected atomic.Uint64
	for w := 0; w < 6; w++ {
		flooders.Add(1)
		go func(w int) {
			defer flooders.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, _ := postJSON(t, ts.URL+"/v1/solve", specJSON(w+i))
				switch resp.StatusCode {
				case http.StatusOK:
					admitted.Add(1)
				case http.StatusServiceUnavailable:
					rejected.Add(1)
				default:
					t.Errorf("flood solve: status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}

	start := time.Now()
	ids := startCampaigns(t, ts, repeCampaignSpec)
	out := awaitTerminal(t, ts, ids[0]) // fails the test after 30s
	if out.Status != campaign.StatusConverged {
		t.Errorf("campaign under flood: status %s (%q), want converged", out.Status, out.Reason)
	}
	elapsed := time.Since(start)

	// Ingest (priority class) must be admitted mid-flood.
	resp, raw := postJSON(t, ts.URL+"/v1/ingest", ingestBody(t, []int{2, 3}, 4))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("ingest under flood: status %d: %s", resp.StatusCode, raw)
	}

	close(stop)
	flooders.Wait()
	t.Logf("flood: %d admitted, %d rejected; campaign settled in %v (%d rounds)",
		admitted.Load(), rejected.Load(), elapsed, out.RoundsRun)
}

// TestMetricsRoundTrip drives traffic and checks the /v1/metrics
// document end to end: per-endpoint histograms, admission and limiter
// state, cache and campaign gauges, and — recovered over a store — the
// WAL counters.
func TestMetricsRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Recover(Config{}, st)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	if resp, raw := postJSON(t, ts.URL+"/v1/solve", specJSON(0)); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d: %s", resp.StatusCode, raw)
	}
	if resp, raw := postJSON(t, ts.URL+"/v1/ingest", ingestBody(t, []int{2, 3}, 4)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, raw)
	}
	if resp, _, _ := doReq(t, "GET", ts.URL+"/v1/nope", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatal("expected a 404 for the other-bucket observation")
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}

	solveHist, ok := m.Endpoints["POST /v1/solve"]
	if !ok || solveHist.Count < 1 || solveHist.SumMS <= 0 || len(solveHist.Buckets) == 0 {
		t.Errorf("solve histogram = %+v, want >= 1 observation with buckets", solveHist)
	}
	if solveHist.P99MS < solveHist.P50MS {
		t.Errorf("quantiles out of order: p50 %v > p99 %v", solveHist.P50MS, solveHist.P99MS)
	}
	if h := m.Endpoints["POST /v1/ingest"]; h.Count < 1 {
		t.Errorf("ingest histogram empty: %+v", h)
	}
	if h := m.Endpoints["other"]; h.Count < 1 {
		t.Errorf("unmatched 404 not pooled under \"other\": %+v", h)
	}
	if m.Admission.Limit < 1 || m.Admission.BulkLimit < 1 || m.Admission.BulkLimit > m.Admission.Limit {
		t.Errorf("admission = %+v", m.Admission)
	}
	if m.RateLimit.Rate != 0 {
		t.Errorf("rate limiter should be disabled: %+v", m.RateLimit)
	}
	if m.Load < 0 || m.Load > 1 {
		t.Errorf("load = %v outside [0, 1]", m.Load)
	}
	if m.Cache.Capacity <= 0 {
		t.Errorf("cache gauge = %+v", m.Cache)
	}
	if m.Campaigns.MaxActive <= 0 {
		t.Errorf("campaign gauge = %+v", m.Campaigns)
	}
	if m.Serve.Solves < 1 || m.Serve.Ingests < 1 {
		t.Errorf("serve counters = %+v", m.Serve)
	}
	if m.Store == nil || m.Store.Appends < 1 || m.Store.LastSeq < 1 {
		t.Errorf("store metrics = %+v, want recorded appends", m.Store)
	}

	// The in-memory embedder path reports no store block.
	s2, ts2 := newTestServer(t, Config{})
	_ = s2
	var m2 MetricsSnapshot
	resp2, err := http.Get(ts2.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&m2); err != nil {
		t.Fatal(err)
	}
	if m2.Store != nil {
		t.Errorf("in-memory server reports store metrics: %+v", m2.Store)
	}
}

// newHTTPServer serves an existing Server over httptest with cleanup.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		if st := s.Store(); st != nil {
			_ = st.Close()
		}
	})
	return ts
}

// TestAccessLogLine pins the access-log format fields the satellite
// requires: status, duration, request id and client identity on one
// line per request.
func TestAccessLogLine(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{Traffic: TrafficConfig{AccessLog: log.New(&buf, "", 0)}})
	resp, _, _ := doReq(t, "GET", ts.URL+"/v1/healthz", "", map[string]string{
		"X-Request-ID": "rid-42", "X-Client-ID": "tester",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	line := buf.String()
	for _, want := range []string{"GET /v1/healthz 200", "rid=rid-42", "client=tester", "ms"} {
		if !strings.Contains(line, want) {
			t.Errorf("access log %q missing %q", line, want)
		}
	}
}

// syncBuffer is a mutex-guarded byte buffer for log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
