package server

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"

	"hputune/internal/inference"
	"hputune/internal/numeric"
	"hputune/internal/store"
)

// Replication surface. A cluster follower keeps a byte-identical
// replica of this node's durable state by polling two endpoints:
//
//	GET /v1/replication/state          — the current snapshot State
//	GET /v1/replication/wal?from=SEQ   — framed WAL records after SEQ
//
// and the cluster's cross-node fit exchange uses two more:
//
//	GET  /v1/replication/aggregates    — this node's ingest partition as
//	                                     additive sufficient statistics
//	POST /v1/replication/fit           — publish a cluster-merged fit
//	                                     through the standard guard
//
// All four are rate-limit exempt (see rateLimitExempt): their only
// clients are the cluster's own followers and merger, and throttling
// them would turn client load into replication or fit-exchange lag.
//
// The WAL reply is the store's durable tail encoded in the on-disk
// frame format (length + CRC + JSON record), so a follower appends the
// body verbatim to its own wal.log and the standard recovery path
// replays it. Only acknowledged (fsynced) records are ever served;
// a 410 with code "compacted" tells the follower the tail no longer
// reaches back to its cursor and it must re-seed from /state.

// nodeHeader carries the serving node's cluster name on replication
// replies so a follower can detect it is polling the wrong process.
const nodeHeader = "X-HT-Node"

// lastSeqHeader reports the sequence of the last record in a WAL reply
// (or the request's cursor when the reply is empty).
const lastSeqHeader = "X-HT-Last-Seq"

// ReplicationStateResponse is the GET /v1/replication/state document.
type ReplicationStateResponse struct {
	// Node is the serving node's cluster name (Config.Node).
	Node string `json:"node"`
	// LastSeq is the last durable WAL sequence folded into State.
	LastSeq uint64 `json:"lastSeq"`
	// State is the full durable snapshot; a follower seeds its replica
	// directory from it and resumes WAL shipping at LastSeq.
	State *store.State `json:"state"`
}

func (s *Server) handleReplicationState(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotFound, "no durable store on this node (start it with -state-dir)")
		return
	}
	state, err := s.st.State()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "read state: %v", err)
		return
	}
	w.Header().Set(nodeHeader, s.cfg.Node)
	writeJSON(w, http.StatusOK, ReplicationStateResponse{
		Node:    s.cfg.Node,
		LastSeq: state.LastSeq,
		State:   state,
	})
}

func (s *Server) handleReplicationWAL(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotFound, "no durable store on this node (start it with -state-dir)")
		return
	}
	from := uint64(0)
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "from=%q is not a sequence number", q)
			return
		}
		from = v
	}
	recs, err := s.st.TailSince(from)
	if err == store.ErrCompacted {
		writeEnvelope(w, http.StatusGone, CodeCompacted, 0,
			"WAL tail compacted past sequence %d; refetch /v1/replication/state", from)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "read WAL tail: %v", err)
		return
	}
	var buf []byte
	for _, rec := range recs {
		buf, err = store.EncodeRecordFrame(buf, rec)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encode record %d: %v", rec.Seq, err)
			return
		}
	}
	last := from
	if n := len(recs); n > 0 {
		last = recs[n-1].Seq
	}
	w.Header().Set(nodeHeader, s.cfg.Node)
	w.Header().Set(lastSeqHeader, strconv.FormatUint(last, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

// ReplicationAggregatesResponse is the GET /v1/replication/aggregates
// document: this node's ingest partition as the O(#price levels)
// additive sufficient statistic, with a monotone version so the merger
// can tell fresh partitions from stale ones across polls.
type ReplicationAggregatesResponse struct {
	// Node is the serving node's cluster name (Config.Node).
	Node string `json:"node"`
	// Version orders snapshots of this partition: the last durable WAL
	// sequence on a store-backed node, else the lifetime accepted-record
	// count. It never decreases on one process; a promoted replica may
	// report a smaller version than the primary it replaced (records the
	// primary acknowledged but never shipped are lost with it).
	Version uint64 `json:"version"`
	// Records is the lifetime accepted trace-record count behind Aggs.
	Records uint64 `json:"records"`
	// Aggs is the per-price aggregate map. Summing these maps across
	// every node and fitting the union is exactly equivalent to fitting
	// one process that ingested every partition's records.
	Aggs map[int]inference.PriceAggregate `json:"aggs"`
}

// handleReplicationAggregates serves the node's ingest partition for
// the cluster merger. A store-backed node serves the durable aggregates
// (State waits out in-flight group commits, so a crash can never take
// back what a merge already consumed) versioned by WAL sequence; an
// in-memory node serves the live map versioned by its record count.
func (s *Server) handleReplicationAggregates(w http.ResponseWriter, r *http.Request) {
	resp := ReplicationAggregatesResponse{Node: s.cfg.Node}
	if s.st != nil {
		state, err := s.st.State()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "read state: %v", err)
			return
		}
		resp.Version = state.LastSeq
		resp.Records = state.Records
		resp.Aggs = state.Aggs
	} else {
		s.ingestMu.Lock()
		aggs := make(map[int]inference.PriceAggregate, len(s.aggs))
		for price, agg := range s.aggs {
			aggs[price] = agg
		}
		s.ingestMu.Unlock()
		resp.Records = s.records.Load()
		resp.Version = resp.Records
		resp.Aggs = aggs
	}
	if resp.Aggs == nil {
		resp.Aggs = map[int]inference.PriceAggregate{}
	}
	w.Header().Set(nodeHeader, s.cfg.Node)
	writeJSON(w, http.StatusOK, resp)
}

// MergedFitRequest is the POST /v1/replication/fit body: a fit the
// cluster merger computed over the union of every node's aggregates,
// plus the per-node aggregate versions it consumed (journaled for
// audit).
type MergedFitRequest struct {
	Fit     store.FitRecord   `json:"fit"`
	Sources map[string]uint64 `json:"sources,omitempty"`
}

// MergedFitResponse is the POST /v1/replication/fit reply. Published
// false means the guard kept the previous fit; FitPending carries the
// same reason string an ingest re-fit would have reported.
type MergedFitResponse struct {
	Published  bool     `json:"published"`
	Fit        *FitInfo `json:"fit,omitempty"`
	FitPending string   `json:"fitPending,omitempty"`
}

// handleReplicationFit publishes a cluster-merged fit through the exact
// guarded path a local ingest re-fit takes: the slope/rate contract is
// checked, a violating fit is refused with the previous fit kept live,
// and an accepted fit is swapped in atomically and journaled (as a
// merged-fit record, so recovery restores it bit-identically).
func (s *Server) handleReplicationFit(w http.ResponseWriter, r *http.Request) {
	var req MergedFitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestStatus(err), "parse merged fit: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "parse merged fit: trailing data after the request document")
		return
	}
	for _, v := range []float64{req.Fit.Slope, req.Fit.Intercept, req.Fit.R2, req.Fit.SE} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			writeError(w, http.StatusBadRequest, "merged fit parameter %v is not finite", v)
			return
		}
	}
	if req.Fit.N < 2 || req.Fit.Prices < 2 {
		writeError(w, http.StatusBadRequest,
			"merged fit over %d points at %d prices; a fit needs >= 2 of each", req.Fit.N, req.Fit.Prices)
		return
	}
	fit := numeric.LinearFit{Slope: req.Fit.Slope, Intercept: req.Fit.Intercept, R2: req.Fit.R2, SE: req.Fit.SE, N: req.Fit.N}
	cand, reason := guardFit(fit, req.Fit.Prices)
	if cand == nil {
		w.Header().Set(nodeHeader, s.cfg.Node)
		writeJSON(w, http.StatusOK, MergedFitResponse{FitPending: reason})
		return
	}
	// ingestMu serializes the publish + journal pair with handleIngest's,
	// so the WAL's fit order always matches the order the models were
	// actually swapped in.
	s.ingestMu.Lock()
	s.fit.Store(cand)
	if s.st != nil {
		_ = s.st.AppendMergedFit(req.Fit, req.Sources)
	}
	s.ingestMu.Unlock()
	w.Header().Set(nodeHeader, s.cfg.Node)
	writeJSON(w, http.StatusOK, MergedFitResponse{
		Published: true,
		Fit:       &FitInfo{Slope: fit.Slope, Intercept: fit.Intercept, R2: fit.R2, Prices: req.Fit.Prices},
	})
}
