package server

import (
	"net/http"
	"strconv"

	"hputune/internal/store"
)

// Replication read surface. A cluster follower keeps a byte-identical
// replica of this node's durable state by polling two endpoints:
//
//	GET /v1/replication/state          — the current snapshot State
//	GET /v1/replication/wal?from=SEQ   — framed WAL records after SEQ
//
// The WAL reply is the store's durable tail encoded in the on-disk
// frame format (length + CRC + JSON record), so a follower appends the
// body verbatim to its own wal.log and the standard recovery path
// replays it. Only acknowledged (fsynced) records are ever served;
// a 410 with code "compacted" tells the follower the tail no longer
// reaches back to its cursor and it must re-seed from /state.

// nodeHeader carries the serving node's cluster name on replication
// replies so a follower can detect it is polling the wrong process.
const nodeHeader = "X-HT-Node"

// lastSeqHeader reports the sequence of the last record in a WAL reply
// (or the request's cursor when the reply is empty).
const lastSeqHeader = "X-HT-Last-Seq"

// ReplicationStateResponse is the GET /v1/replication/state document.
type ReplicationStateResponse struct {
	// Node is the serving node's cluster name (Config.Node).
	Node string `json:"node"`
	// LastSeq is the last durable WAL sequence folded into State.
	LastSeq uint64 `json:"lastSeq"`
	// State is the full durable snapshot; a follower seeds its replica
	// directory from it and resumes WAL shipping at LastSeq.
	State *store.State `json:"state"`
}

func (s *Server) handleReplicationState(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotFound, "no durable store on this node (start it with -state-dir)")
		return
	}
	state, err := s.st.State()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "read state: %v", err)
		return
	}
	w.Header().Set(nodeHeader, s.cfg.Node)
	writeJSON(w, http.StatusOK, ReplicationStateResponse{
		Node:    s.cfg.Node,
		LastSeq: state.LastSeq,
		State:   state,
	})
}

func (s *Server) handleReplicationWAL(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotFound, "no durable store on this node (start it with -state-dir)")
		return
	}
	from := uint64(0)
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "from=%q is not a sequence number", q)
			return
		}
		from = v
	}
	recs, err := s.st.TailSince(from)
	if err == store.ErrCompacted {
		writeEnvelope(w, http.StatusGone, CodeCompacted, 0,
			"WAL tail compacted past sequence %d; refetch /v1/replication/state", from)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "read WAL tail: %v", err)
		return
	}
	var buf []byte
	for _, rec := range recs {
		buf, err = store.EncodeRecordFrame(buf, rec)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encode record %d: %v", rec.Seq, err)
			return
		}
	}
	last := from
	if n := len(recs); n > 0 {
		last = recs[n-1].Seq
	}
	w.Header().Set(nodeHeader, s.cfg.Node)
	w.Header().Set(lastSeqHeader, strconv.FormatUint(last, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}
