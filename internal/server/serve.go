package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// drainTimeout bounds how long Shutdown waits for in-flight requests.
const drainTimeout = 15 * time.Second

// ListenAndServe serves the API on addr until ctx is cancelled, then
// shuts down gracefully: the listener closes immediately, in-flight
// requests get up to drainTimeout to finish, and the remainder are cut
// off. A clean drain returns nil.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, ln)
}

func (s *Server) serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// ReadTimeout bounds how long a connection may dribble its body:
		// solve/simulate admit a permit before reading, so it caps each
		// connection's permit hold during the read. Against deliberate
		// slow-body permit pinning it composes with two traffic-layer
		// defenses: the per-client rate limiter (Traffic.RatePerClient)
		// makes each reconnect spend a token, so a re-pinning attacker
		// exhausts their bucket within a burst, and the two-class gate
		// caps bulk permits below the pool, so even a fully pinned bulk
		// share never blocks ingest or campaign control. 15s is generous
		// for a 32 MB body on any sane link. No WriteTimeout — a
		// legitimately admitted large solve may take longer to compute
		// than any fixed write deadline.
		ReadTimeout: 15 * time.Second,
		IdleTimeout: 2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Background campaigns stop first (canceled without a store,
		// suspended — resumable on the next boot — with one): a campaign
		// observes the stop between loop steps and settles, and
		// in-flight requests inspecting it still get a consistent
		// snapshot during the drain. The request-drain timer starts only
		// after campaigns settle, so a slow final round cannot eat the
		// documented 15 s budget for in-flight requests.
		s.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// Serve is ListenAndServe over an existing listener (tests listen on
// ":0" and read ln.Addr() themselves).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return s.serve(ctx, ln)
}
