package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hputune/internal/store"
)

// fetchReplState decodes GET /v1/replication/state.
func fetchReplState(t *testing.T, ts *httptest.Server) (ReplicationStateResponse, *http.Response) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/replication/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc ReplicationStateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("decode state: %v", err)
		}
	}
	return doc, resp
}

// fetchReplWAL returns the raw framed bytes from GET /v1/replication/wal.
func fetchReplWAL(t *testing.T, ts *httptest.Server, from string) ([]byte, *http.Response) {
	t.Helper()
	url := ts.URL + "/v1/replication/wal"
	if from != "" {
		url += "?from=" + from
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw, resp
}

func TestReplicationEndpointsServeDurableTail(t *testing.T) {
	dir := t.TempDir()
	st, srv, ts := recoverTestServer(t, dir, store.Options{})
	srv.cfg.Node = "n1"

	startFleetAndWait(t, srv, ts, crashFleetDoc)

	state, resp := fetchReplState(t, ts)
	if resp.StatusCode != 200 {
		t.Fatalf("state status %d", resp.StatusCode)
	}
	if resp.Header.Get(nodeHeader) != "n1" || state.Node != "n1" {
		t.Fatalf("node header %q body %q, want n1", resp.Header.Get(nodeHeader), state.Node)
	}
	if state.State == nil || state.LastSeq != state.State.LastSeq {
		t.Fatalf("lastSeq %d inconsistent with state %+v", state.LastSeq, state.State)
	}

	raw, resp := fetchReplWAL(t, ts, "0")
	if resp.StatusCode != 200 {
		t.Fatalf("wal status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	recs, err := store.DecodeAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decode shipped frames: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("no records shipped after a full fleet")
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d, want gapless from 1", i, rec.Seq)
		}
	}
	if got := recs[len(recs)-1].Seq; got != state.LastSeq {
		t.Fatalf("tail ends at seq %d, state says %d", got, state.LastSeq)
	}
	if h := resp.Header.Get(lastSeqHeader); h != "" {
		want := recs[len(recs)-1].Seq
		if got, _ := parseUint(h); got != want {
			t.Fatalf("%s header %q, want %d", lastSeqHeader, h, want)
		}
	} else {
		t.Fatalf("missing %s header", lastSeqHeader)
	}

	// A cursor at the durable tip yields an empty, successful reply.
	raw, resp = fetchReplWAL(t, ts, resp.Header.Get(lastSeqHeader))
	if resp.StatusCode != 200 || len(raw) != 0 {
		t.Fatalf("tip fetch: status %d, %d bytes", resp.StatusCode, len(raw))
	}

	// Compaction makes old cursors unservable: 410 with code "compacted".
	if err := st.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	raw, resp = fetchReplWAL(t, ts, "0")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("post-compaction fetch from 0: status %d: %s", resp.StatusCode, raw)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != CodeCompacted {
		t.Fatalf("compacted envelope %s (err %v)", raw, err)
	}

	// A malformed cursor is a bad_spec 400.
	raw, resp = fetchReplWAL(t, ts, "notanumber")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), CodeBadSpec) {
		t.Fatalf("bad cursor: status %d: %s", resp.StatusCode, raw)
	}
}

// parseUint mirrors the handler's cursor parsing for header checks.
func parseUint(s string) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		v = v*10 + uint64(s[i]-'0')
	}
	return v, nil
}

func TestReplicationEndpointsWithoutStoreAre404(t *testing.T) {
	_, ts := newTestServer(t, Config{Node: "mem"})
	for _, path := range []string{"/v1/replication/state", "/v1/replication/wal"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(raw), CodeNotFound) {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, raw)
		}
	}
}

// TestReplicationExemptFromRateLimit pins the follower-feed exemption: a
// rate limit tight enough to throttle every client must not slow the
// replication reads.
func TestReplicationExemptFromRateLimit(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s, err := Recover(Config{Traffic: TrafficConfig{RatePerClient: 0.001, RateBurst: 1}}, st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 20; i++ {
		_, resp := fetchReplWAL(t, ts, "0")
		if resp.StatusCode != 200 {
			t.Fatalf("replication poll %d rate-limited: status %d", i, resp.StatusCode)
		}
	}
}
