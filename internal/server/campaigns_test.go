package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/spec"
)

// repeCampaignSpec is a two-group stationary campaign document (the
// Fig 2 "repe" shape) that converges in a handful of rounds.
const repeCampaignSpec = `{
  "campaign": {
    "name": "repe", "roundBudget": 1000, "rounds": 12, "budget": 12000,
    "epsilon": 0.05, "seed": 7,
    "prior": {"kind": "linear", "k": 1, "b": 1},
    "groups": [
      {"name": "g3", "tasks": 50, "reps": 3, "procRate": 2.0,
       "true": {"kind": "linear", "k": 2, "b": 0.5}},
      {"name": "g5", "tasks": 50, "reps": 5, "procRate": 2.0,
       "true": {"kind": "linear", "k": 2, "b": 0.5}}
    ]
  }
}`

// startCampaigns POSTs a campaign document and returns the accepted ids.
func startCampaigns(t *testing.T, ts *httptest.Server, body string) []string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e ErrorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("start: status %d: %s", resp.StatusCode, e.Error.Message)
	}
	var out CampaignStartResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.IDs
}

// getCampaign fetches one campaign snapshot.
func getCampaign(t *testing.T, ts *httptest.Server, id string) CampaignGetResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", id, resp.StatusCode)
	}
	var out CampaignGetResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// awaitTerminal polls until the campaign settles.
func awaitTerminal(t *testing.T, ts *httptest.Server, id string) CampaignGetResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		out := getCampaign(t, ts, id)
		if out.Status.Terminal() {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s", id, out.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func newCampaignTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func TestCampaignEndToEnd(t *testing.T) {
	s, ts := newCampaignTestServer(t, Config{})
	ids := startCampaigns(t, ts, repeCampaignSpec)
	if len(ids) != 1 {
		t.Fatalf("ids %v", ids)
	}
	out := awaitTerminal(t, ts, ids[0])
	if out.Status != campaign.StatusConverged || !out.Converged {
		t.Fatalf("status %s (%q), want converged", out.Status, out.Reason)
	}
	if out.RoundsRun < 2 || len(out.Rounds) != out.RoundsRun {
		t.Fatalf("rounds %d retained %d", out.RoundsRun, len(out.Rounds))
	}
	for i, r := range out.Rounds {
		if r.Round != i || len(r.Prices) != 2 || r.Records == 0 {
			t.Fatalf("round %d malformed: %+v", i, r)
		}
	}
	// The HTTP loop must equal the in-process loop exactly — the
	// same-seed determinism contract across entry points.
	direct, err := campaign.RunFleet(t.Context(), nil, mustParseCampaigns(t, s, repeCampaignSpec), 1)
	if err != nil {
		t.Fatal(err)
	}
	if direct[0].RoundsRun != out.RoundsRun || direct[0].Spent != out.Spent {
		t.Fatalf("HTTP %d rounds/%d spent, direct %d/%d", out.RoundsRun, out.Spent, direct[0].RoundsRun, direct[0].Spent)
	}
	for i, r := range direct[0].Rounds {
		if fmt.Sprint(r.Prices) != fmt.Sprint(out.Rounds[i].Prices) {
			t.Fatalf("round %d prices diverge: HTTP %v direct %v", i, out.Rounds[i].Prices, r.Prices)
		}
	}
	// List and stats surface the campaign.
	resp, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list CampaignListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != ids[0] || list.Campaigns[0].Name != "repe" {
		t.Fatalf("list %+v", list)
	}
	var stats StatsResponse
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Campaigns.Started != 1 || stats.Campaigns.Finished != 1 || stats.Campaigns.Rounds != uint64(out.RoundsRun) {
		t.Fatalf("campaign stats %+v, want 1 started/finished and %d rounds", stats.Campaigns, out.RoundsRun)
	}
}

// mustParseCampaigns parses a campaign document the way the handler
// does (shared parser, server build opts).
func mustParseCampaigns(t *testing.T, s *Server, body string) []campaign.Config {
	t.Helper()
	cfgs, err := spec.ParseCampaigns([]byte(body), s.buildOpts())
	if err != nil {
		t.Fatal(err)
	}
	return cfgs
}

func TestCampaignFleetAndCancel(t *testing.T) {
	_, ts := newCampaignTestServer(t, Config{})
	// A slow campaign: drifting, epsilon 0, many rounds of real work.
	slow := `{
  "campaigns": [{
    "name": "slow", "roundBudget": 10000, "rounds": 4096, "budget": 16000000,
    "epsilon": 0, "seed": 5,
    "prior": {"kind": "linear", "k": 1, "b": 1},
    "groups": [
      {"name": "g3", "tasks": 500, "reps": 3, "procRate": 2.0,
       "true": {"kind": "linear", "k": 2, "b": 0.5}},
      {"name": "g5", "tasks": 500, "reps": 5, "procRate": 2.0,
       "true": {"kind": "linear", "k": 2, "b": 0.5}}
    ],
    "drift": {"kind": "rate", "factor": 0.95}
  }]
}`
	ids := startCampaigns(t, ts, slow)
	// Wait until the loop has demonstrably run at least one round, then
	// cancel mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for getCampaign(t, ts, ids[0]).RoundsRun < 1 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never completed a round")
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+ids[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	out := awaitTerminal(t, ts, ids[0])
	if out.Status != campaign.StatusCanceled {
		t.Fatalf("status %s (%q), want canceled", out.Status, out.Reason)
	}
	// The belief published by completed rounds survives the cancel; the
	// interrupted round must not have published.
	if last := out.Rounds[len(out.Rounds)-1]; last.Fit != nil && out.Fit == nil {
		t.Fatal("published fit lost on cancel")
	}
}

func TestCampaignRejections(t *testing.T) {
	_, ts := newCampaignTestServer(t, Config{MaxCampaigns: 1})
	for name, tc := range map[string]struct {
		body string
		want int
		msg  string
	}{
		"not json":     {body: "{", want: http.StatusBadRequest, msg: "parse campaign spec"},
		"empty doc":    {body: "{}", want: http.StatusBadRequest, msg: "exactly one of"},
		"mixed kinds":  {body: `{"fleet": {"preset": "paper"}, "campaigns": [{"name": "x"}]}`, want: http.StatusBadRequest, msg: "exactly one of"},
		"bad preset":   {body: `{"fleet": {"preset": "nope"}}`, want: http.StatusBadRequest, msg: "unknown fleet preset"},
		"bad model":    {body: `{"campaign": {"name": "x", "roundBudget": 10, "groups": [{"name": "g", "tasks": 1, "reps": 1, "procRate": 1, "true": {"kind": "cubic"}}], "prior": {"kind": "linear", "k": 1, "b": 1}}}`, want: http.StatusBadRequest, msg: "unknown model kind"},
		"over rounds":  {body: `{"campaign": {"name": "x", "roundBudget": 10, "rounds": 5000, "groups": [{"name": "g", "tasks": 1, "reps": 1, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}], "prior": {"kind": "linear", "k": 1, "b": 1}}}`, want: http.StatusBadRequest, msg: "round service limit"},
		"fitted prior": {body: `{"campaign": {"name": "x", "roundBudget": 10, "groups": [{"name": "g", "tasks": 1, "reps": 1, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}], "prior": {"kind": "fitted"}}}`, want: http.StatusBadRequest, msg: "ingest traces"},
		"unaffordable": {body: `{"campaign": {"name": "x", "roundBudget": 3, "groups": [{"name": "g", "tasks": 2, "reps": 2, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}], "prior": {"kind": "linear", "k": 1, "b": 1}}}`, want: http.StatusBadRequest, msg: "budget"},
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var e ErrorEnvelope
			_ = json.NewDecoder(resp.Body).Decode(&e)
			if resp.StatusCode != tc.want || !strings.Contains(e.Error.Message, tc.msg) {
				t.Fatalf("status %d %q, want %d mentioning %q", resp.StatusCode, e.Error.Message, tc.want, tc.msg)
			}
		})
	}
	// Unknown id paths.
	resp, err := http.Get(ts.URL + "/v1/campaigns/zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown: %d", resp.StatusCode)
	}
	// Capacity: one long campaign occupies the single slot; the next
	// fleet is 503 with Retry-After, atomically rejected.
	ids := startCampaigns(t, ts, `{"campaign": {"name": "long", "roundBudget": 10000, "rounds": 4096,
	  "budget": 16000000, "epsilon": 0, "seed": 3,
	  "prior": {"kind": "linear", "k": 1, "b": 1},
	  "groups": [
	    {"name": "g3", "tasks": 500, "reps": 3, "procRate": 2.0, "true": {"kind": "linear", "k": 2, "b": 0.5}},
	    {"name": "g5", "tasks": 500, "reps": 5, "procRate": 2.0, "true": {"kind": "linear", "k": 2, "b": 0.5}}],
	  "drift": {"kind": "rate", "factor": 0.95}}}`)
	resp, err = http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(repeCampaignSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("start over capacity: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+ids[0], nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	awaitTerminal(t, ts, ids[0])
}
