package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"hputune/internal/campaign"
	"hputune/internal/pricing"
	"hputune/internal/spec"
	"hputune/internal/store"
	"hputune/internal/traffic"
)

// Campaign service ceilings, enforced before any campaign starts so one
// hostile fleet cannot pin the process for hours (each round is a solve
// plus a market run, so rounds × round-budget bounds the work).
const (
	// maxFleetCampaigns bounds campaigns per POST /v1/campaigns.
	maxFleetCampaigns = 64
	// maxCampaignRounds bounds one campaign's round deadline.
	maxCampaignRounds = 4096
	// maxQueryItems bounds a crowd-query campaign's dataset: every round
	// replans the whole query, so items² bounds the per-round vote count.
	maxQueryItems = 2048
)

// checkCampaignLimits enforces the service ceilings on one campaign,
// reusing the per-problem bounds on its round shape (a campaign round
// is exactly one solve of that problem).
func checkCampaignLimits(i int, cfg campaign.Config) error {
	if cfg.MaxRounds > maxCampaignRounds {
		return fmt.Errorf("campaign %d: %d rounds above the %d-round service limit", i, cfg.MaxRounds, maxCampaignRounds)
	}
	if cfg.RoundBudget > maxProblemBudget {
		return fmt.Errorf("campaign %d: round budget %d above the %d-unit service limit", i, cfg.RoundBudget, maxProblemBudget)
	}
	if cfg.RoundBudget > 0 && cfg.RoundBudget*len(cfg.Groups) > maxProblemWork {
		return fmt.Errorf("campaign %d: round budget %d × %d groups above the %d-step service limit", i, cfg.RoundBudget, len(cfg.Groups), maxProblemWork)
	}
	if q := cfg.Query; q != nil {
		// Crowd-query campaigns derive their groups inside campaign.New,
		// so the per-group loop below never sees them; bound the query
		// shape directly instead.
		if q.Items > maxQueryItems {
			return fmt.Errorf("campaign %d: query over %d items above the %d-item service limit", i, q.Items, maxQueryItems)
		}
		if q.Reps > maxProblemReps {
			return fmt.Errorf("campaign %d: query with %d votes per task above the %d-repetition service limit", i, q.Reps, maxProblemReps)
		}
	}
	reps := 0
	for _, g := range cfg.Groups {
		if g.Tasks > maxProblemReps || g.Reps > maxProblemReps {
			return fmt.Errorf("campaign %d: %d tasks × %d reps above the %d-repetition service limit", i, g.Tasks, g.Reps, maxProblemReps)
		}
		if g.Tasks > 0 && g.Reps > 0 {
			reps += g.Tasks * g.Reps
		}
		if reps > maxProblemReps {
			return fmt.Errorf("campaign %d: more than %d total repetitions per round (service limit)", i, maxProblemReps)
		}
	}
	return nil
}

// CampaignStartResponse is the POST /v1/campaigns reply: the ids of the
// accepted campaigns, in spec order. Campaigns run in the background —
// poll GET /v1/campaigns/{id} for rounds and terminal status.
type CampaignStartResponse struct {
	IDs []string `json:"ids"`
}

// handleCampaignStart parses a campaign spec document ("campaign",
// "campaigns" or "fleet" top level) and starts every campaign in it,
// atomically: a rejected fleet starts nothing. Campaigns are background
// work bounded by the manager's active cap, not the solve gate — a
// running fleet must not starve interactive solves of permits, and vice
// versa.
func (s *Server) handleCampaignStart(w http.ResponseWriter, r *http.Request) {
	// Campaign control is priority-class work on the main gate: the body
	// parse is bounded but not free, and a bulk flood must not be able
	// to delay a re-tune loop's start. The launched campaigns themselves
	// run in the background under the manager's own cap.
	if !s.admitPriority(w, "campaign-start") {
		return
	}
	defer s.gate.Release(traffic.Priority)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, badRequestStatus(err), "%v", err)
		return
	}
	opts := s.buildOpts()
	cfgs, err := spec.ParseCampaigns(raw, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(cfgs) > maxFleetCampaigns {
		writeError(w, http.StatusBadRequest, "fleet of %d campaigns above the %d service limit; split it", len(cfgs), maxFleetCampaigns)
		return
	}
	for i, cfg := range cfgs {
		if err := checkCampaignLimits(i, cfg); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	ids, err := s.startFleet(raw, opts, cfgs)
	if err != nil {
		switch {
		case errors.Is(err, campaign.ErrCapacity):
			writeOverloaded(w, overloadRetry, "%v", err)
		case errors.Is(err, campaign.ErrClosed):
			writeSuspended(w, "server is draining: %v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, CampaignStartResponse{IDs: ids})
}

// startFleet launches an admitted fleet. With a durable store the
// launch is held until the fleet's start record — the verbatim spec,
// the assigned ids, and the "fitted" model the parse resolved against —
// is journaled, so WAL replay always sees a fleet before any of its
// rounds; recovery re-parses the spec to rebuild the configs.
func (s *Server) startFleet(raw []byte, opts spec.BuildOpts, cfgs []campaign.Config) ([]string, error) {
	if s.st == nil {
		return s.campaigns.StartAll(cfgs)
	}
	ids, launch, err := s.campaigns.StartAllHeld(cfgs)
	if err != nil {
		return nil, err
	}
	var fitted *store.FittedModel
	if lin, ok := opts.Fitted.(pricing.Linear); ok {
		fitted = &store.FittedModel{K: lin.K, B: lin.B}
	}
	// A store failure is sticky and surfaced via its OnError hook; the
	// fleet still launches — the serving process degrades to in-memory
	// durability rather than refusing work.
	_ = s.st.AppendFleet(raw, ids, fitted)
	launch()
	return ids, nil
}

// CampaignGetResponse is the GET /v1/campaigns/{id} reply.
type CampaignGetResponse struct {
	ID string `json:"id"`
	// Stale marks a reply served from a follower replica instead of the
	// owning node (cluster router only, while the owner is down but not
	// yet promoted): correct as of the replica's last shipped record,
	// possibly behind the dead node's final acknowledged rounds.
	Stale bool `json:"stale,omitempty"`
	campaign.Result
}

func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, ok := s.campaigns.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	writeJSON(w, http.StatusOK, CampaignGetResponse{ID: id, Result: res})
}

// CampaignListResponse is the GET /v1/campaigns reply.
type CampaignListResponse struct {
	Campaigns []campaign.Summary `json:"campaigns"`
	// StaleNodes names nodes whose campaigns were listed from their
	// follower replicas (cluster router only, while those nodes are down
	// but not yet promoted); their summaries may trail the dead node's
	// final acknowledged rounds.
	StaleNodes []string `json:"staleNodes,omitempty"`
}

func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CampaignListResponse{Campaigns: s.campaigns.List()})
}

// handleCampaignCancel requests cancellation; the reply carries the
// snapshot at cancel time (possibly still "running" — a mid-round
// cancel settles, without publishing that round, moments later).
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, ok := s.campaigns.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	writeJSON(w, http.StatusOK, CampaignGetResponse{ID: id, Result: res})
}
