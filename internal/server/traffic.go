package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/htuning"
	"hputune/internal/store"
	"hputune/internal/traffic"
)

// TrafficConfig tunes the hardening layer in front of the handlers:
// admission weighting, per-client rate limiting, CPU shedding and the
// access log. The zero value serves like a plain admission gate — no
// rate limiting, no shedding, 3/4 of the permits open to bulk work.
type TrafficConfig struct {
	// BulkShare is the fraction of MaxInFlight permits that bulk work
	// (solve, solve-heterogeneous, simulate) may occupy; the rest stays
	// reserved for priority work (ingest, campaign starts) so re-tuning
	// never starves behind a solve flood. <= 0 means 0.75; whenever
	// MaxInFlight >= 2 at least one permit is reserved.
	BulkShare float64
	// RatePerClient is the sustained request rate (requests/second)
	// each client identity may hold across the API (health and metrics
	// probes exempt). <= 0 disables rate limiting.
	RatePerClient float64
	// RateBurst is the token-bucket capacity per client.
	// <= 0 means max(1, 2×RatePerClient).
	RateBurst float64
	// MaxClients bounds the tracked rate-limit buckets (LRU eviction).
	// <= 0 means 4096.
	MaxClients int
	// ClientHeader names the request header carrying the client
	// identity for rate limiting and the access log; empty means
	// "X-Client-ID". Requests without the header fall back to the
	// remote address's host part.
	ClientHeader string
	// ShedCPU sheds bulk admissions while the process's sampled CPU
	// utilization (fraction of GOMAXPROCS capacity) is at or above this
	// threshold. <= 0 disables shedding.
	ShedCPU float64
	// AccessLog, when non-nil, receives one line per request:
	// method, path, status, bytes, duration, request id, client.
	AccessLog *log.Logger
}

// DefaultClientHeader identifies clients when TrafficConfig.ClientHeader
// is unset. Exported for the cluster router, which resolves the same
// identity for ring placement and stamps it on forwarded requests.
const DefaultClientHeader = "X-Client-ID"

// requestIDHeader carries the request identity; accepted from the
// client or generated, echoed on every response, logged.
const requestIDHeader = "X-Request-ID"

// ridPrefix/ridSeq build generated request ids: one random process
// prefix plus a counter, so ids are unique across restarts without
// per-request entropy.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Sprintf("%08x", os.Getpid())
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

// requestID returns the validated client-supplied X-Request-ID or
// generates one. Client values are accepted only when short and
// printable-ASCII (they are echoed into headers and logs).
func requestID(r *http.Request) string {
	id := r.Header.Get(requestIDHeader)
	if id != "" && len(id) <= 128 && printableASCII(id) {
		return id
	}
	return fmt.Sprintf("%s-%d", ridPrefix, ridSeq.Add(1))
}

func printableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x21 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

// ResolveClientKey is the one client-identity rule shared by every
// layer that partitions or budgets by client — this server's rate
// limiter and the cluster router's ingest placement: the client header
// when present (and sanely bounded), else the host part of the remote
// address. The port is always stripped — an ephemeral port would give
// the same client a fresh identity per TCP connection, splitting its
// stream across ring placements and rate buckets. header empty means
// DefaultClientHeader.
func ResolveClientKey(r *http.Request, header string) string {
	if header == "" {
		header = DefaultClientHeader
	}
	if id := r.Header.Get(header); id != "" && len(id) <= 256 {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return r.RemoteAddr
	}
	return host
}

// clientKey is the rate-limit and log identity of a request.
func (s *Server) clientKey(r *http.Request) string {
	return ResolveClientKey(r, s.clientHeader)
}

// rateLimitExempt excludes liveness and monitoring probes from rate
// limiting — throttling the probes that diagnose an overload would be
// self-defeating — and the replication reads, whose only client is a
// cluster follower polling this node's WAL tail: rate-limiting the
// replica's feed would turn client load into replication lag.
func rateLimitExempt(path string) bool {
	return path == "/v1/healthz" || path == "/v1/metrics" ||
		strings.HasPrefix(path, "/v1/replication/")
}

// middleware wraps the mux with the traffic layer, outermost first:
// request identity (echoed even on replies written before admission),
// envelope interception for non-JSON errors, per-client rate limiting,
// then — after the handler — the per-endpoint latency histogram and the
// access log line.
func (s *Server) middleware() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := requestID(r)
		w.Header().Set(requestIDHeader, rid)
		ew := &envelopeWriter{rw: w}
		// The matched route pattern labels the histogram; unmatched
		// requests (404s, 405s) pool under "other".
		_, pattern := s.mux.Handler(r)
		client := s.clientKey(r)
		ok, retry := true, time.Duration(0)
		if !rateLimitExempt(r.URL.Path) {
			ok, retry = s.limiter.Allow(client)
		}
		if !ok {
			writeEnvelope(ew, http.StatusTooManyRequests, CodeRateLimited, retry,
				"client %q over the %g request/s limit; wait %dms", client, s.limiter.Rate(), int64((retry+time.Millisecond-1)/time.Millisecond))
		} else {
			s.mux.ServeHTTP(ew, r)
		}
		ew.finish()
		s.observe(pattern, time.Since(start))
		if s.accessLog != nil {
			s.accessLog.Printf("%s %s %d %dB %.3fms rid=%s client=%s",
				r.Method, r.URL.Path, ew.Status(), ew.bytes,
				float64(time.Since(start))/float64(time.Millisecond), rid, client)
		}
	})
}

// observe records one request duration under its route pattern.
func (s *Server) observe(pattern string, d time.Duration) {
	s.hist.Observe(pattern, d)
}

// MetricsSnapshot is the GET /v1/metrics document: per-endpoint latency
// histograms plus gauges and counters from every layer of the serving
// process — admission gate, rate limiter, CPU load, estimator cache,
// campaign manager, request counters and (when durable) the WAL.
// It extends the CacheStats pattern: one point-in-time copy, plain
// JSON, safe to scrape at any frequency.
type MetricsSnapshot struct {
	// Endpoints maps route patterns (plus "other" for unmatched
	// requests) to their latency histograms; times in milliseconds.
	Endpoints map[string]traffic.HistogramSnapshot `json:"endpoints"`
	// Admission is the two-class gate state (permits, occupancy,
	// rejections, sheds).
	Admission traffic.GateSnapshot `json:"admission"`
	// RateLimit is the per-client limiter state (zero when disabled).
	RateLimit traffic.LimiterStats `json:"rateLimit"`
	// Load is the sampled process CPU utilization in [0, 1] (fraction
	// of GOMAXPROCS capacity).
	Load float64 `json:"load"`
	// Cache is the shared estimator's memo-cache counters.
	Cache htuning.CacheStats `json:"cache"`
	// Campaigns is the campaign manager's occupancy and lifetime
	// counters.
	Campaigns campaign.Stats `json:"campaigns"`
	// Serve is the request-level counter block also served by /v1/stats.
	Serve ServeStats `json:"serve"`
	// Store is the WAL append/fsync/compaction state; nil for an
	// in-memory server.
	Store *store.Metrics `json:"store,omitempty"`
}

// Metrics snapshots the full observability surface (the /v1/metrics
// document) for embedders.
func (s *Server) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Endpoints: s.hist.Snapshot(),
		Admission: s.gate.Snapshot(),
		RateLimit: s.limiter.Stats(),
		Load:      s.loadSampler.Load(),
		Cache:     s.est.CacheStats(),
		Campaigns: s.campaigns.Stats(),
		Serve:     s.serveStats(),
		Store:     s.storeMetrics(),
	}
}

func (s *Server) storeMetrics() *store.Metrics {
	if s.st == nil {
		return nil
	}
	m := s.st.Metrics()
	return &m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
