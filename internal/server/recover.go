package server

import (
	"fmt"
	"sort"

	"hputune/internal/campaign"
	"hputune/internal/numeric"
	"hputune/internal/pricing"
	"hputune/internal/spec"
	"hputune/internal/store"
)

// storeJournal adapts campaign lifecycle events to store appends.
// Append errors are sticky inside the store and surfaced through its
// OnError hook; campaigns keep running in memory either way —
// durability degrades, the live loop does not.
type storeJournal struct{ st *store.Store }

func (j storeJournal) Round(id string, snap campaign.RoundSnapshot, chk campaign.Checkpoint) {
	_ = j.st.AppendRound(id, snap, chk)
}

func (j storeJournal) Finished(id string, chk campaign.Checkpoint) {
	_ = j.st.AppendFinished(id, chk)
}

func (j storeJournal) Evicted(id string, chk campaign.Checkpoint, rounds []campaign.RoundSnapshot) {
	// The final checkpoint and history are already durable from the
	// campaign's own records; archiving re-labels them as evicted.
	_ = j.st.AppendArchive(id)
}

// Recover builds a server whose durable state lives in st: the ingest
// aggregates, published fit, campaigns and manager counters recorded
// there are restored; unfinished campaigns resume immediately from
// their last completed round — the continuation is bit-identical to an
// uninterrupted run, because round seeds derive only from each
// campaign's config seed and the solvers, simulator and fit are
// deterministic — and every subsequent ingest, fit and campaign event
// is journaled back to st. On graceful shutdown the server suspends
// campaigns instead of canceling them, so the next Recover picks them
// back up; a crash (SIGKILL) just loses the rounds that had not been
// journaled yet, which the resumed run re-executes identically.
func Recover(cfg Config, st *store.Store) (*Server, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	state, err := st.State()
	if err != nil {
		return nil, err
	}
	// Ingest state: the aggregates map is our private deep copy.
	if len(state.Aggs) > 0 {
		s.aggs = state.Aggs
	}
	s.records.Store(state.Records)
	if f := state.Fit; f != nil {
		s.fit.Store(&fitState{
			model:  pricing.Linear{K: f.Slope, B: f.Intercept},
			fit:    numeric.LinearFit{Slope: f.Slope, Intercept: f.Intercept, R2: f.R2, SE: f.SE, N: f.N},
			prices: f.Prices,
		})
	}

	s.campaigns.SetJournal(storeJournal{st: st})
	s.campaigns.RestoreCounters(state.Started, state.Finished, state.Canceled, state.EvictedRounds, state.NextID)
	parsed := make(map[int][]campaign.Config)
	for _, id := range sortedCampaignIDs(state.Campaigns) {
		cs := state.Campaigns[id]
		cfgs, ok := parsed[cs.Fleet]
		if !ok {
			if cs.Fleet < 0 || cs.Fleet >= len(state.Fleets) {
				return nil, fmt.Errorf("server: recover campaign %s: fleet %d out of range (%d fleets)", id, cs.Fleet, len(state.Fleets))
			}
			fl := state.Fleets[cs.Fleet]
			opts := spec.BuildOpts{}
			if fl.Fitted != nil {
				opts.Fitted = pricing.Linear{K: fl.Fitted.K, B: fl.Fitted.B}
			}
			cfgs, err = spec.ParseCampaigns(fl.Spec, opts)
			if err != nil {
				return nil, fmt.Errorf("server: recover fleet %d: %w", cs.Fleet, err)
			}
			parsed[cs.Fleet] = cfgs
		}
		if cs.Index < 0 || cs.Index >= len(cfgs) {
			return nil, fmt.Errorf("server: recover campaign %s: index %d out of range (fleet of %d)", id, cs.Index, len(cfgs))
		}
		c, err := campaign.New(s.est, cfgs[cs.Index])
		if err != nil {
			return nil, fmt.Errorf("server: recover campaign %s: %w", id, err)
		}
		if err := c.Restore(cs.Checkpoint, cs.Rounds); err != nil {
			return nil, fmt.Errorf("server: recover campaign %s: %w", id, err)
		}
		if err := s.campaigns.Resume(id, c); err != nil {
			return nil, fmt.Errorf("server: recover campaign %s: %w", id, err)
		}
	}
	s.st = st
	return s, nil
}

// sortedCampaignIDs orders ids by their numeric suffix (c2 before c10)
// so recovery resumes campaigns deterministically in start order.
func sortedCampaignIDs(campaigns map[string]*store.CampaignState) []string {
	ids := make([]string, 0, len(campaigns))
	for id := range campaigns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ni, oki := campaign.ParseCampaignID(ids[i])
		nj, okj := campaign.ParseCampaignID(ids[j])
		if oki && okj && ni != nj {
			return ni < nj
		}
		if oki != okj {
			return oki
		}
		return ids[i] < ids[j]
	})
	return ids
}
