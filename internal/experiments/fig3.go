package experiments

import (
	"fmt"

	"hputune/internal/market"
	"hputune/internal/numeric"
	"hputune/internal/textplot"
	"hputune/internal/workload"
)

func init() {
	register("fig3",
		"Fig 3: worker arrival moments of 20 image-filter tasks at $0.05 (Poisson linearity)",
		runFig3)
}

// runFig3 posts a batch of single-repetition image-filter tasks at the
// 1-unit reward ($0.05) and traces, for the first 20 acceptances (the
// paper "collects the first 20 arrivals"), the acceptance epoch (phase 1),
// the processing duration (phase 2) and the completion epoch (overall),
// averaged over cfg.Rounds marketplace replications — the paper's Fig 3.
// Minutes on the y axis, as in the paper. The posted pool is larger than
// 20 so the early acceptance stream is homogeneous-Poisson, which is what
// makes the paper's epochs linear in order.
func runFig3(cfg Config) (Result, error) {
	const (
		nTasks  = 60 // open pool
		nOrders = 20 // arrivals traced
	)
	class, err := workload.ImageFilterClass(4)
	if err != nil {
		return Result{}, err
	}
	ph1 := make([]*numeric.Kahan, nOrders)
	ph2 := make([]*numeric.Kahan, nOrders)
	all := make([]*numeric.Kahan, nOrders)
	for i := range ph1 {
		ph1[i], ph2[i], all[i] = numeric.NewKahan(), numeric.NewKahan(), numeric.NewKahan()
	}
	for round := 0; round < cfg.Rounds; round++ {
		sim, err := market.New(market.Config{Seed: cfg.Seed + uint64(round)})
		if err != nil {
			return Result{}, err
		}
		for i := 0; i < nTasks; i++ {
			err := sim.Post(market.TaskSpec{
				ID:        fmt.Sprintf("fig3-%d", i),
				Class:     class,
				RepPrices: []int{workload.ProbeReward},
			})
			if err != nil {
				return Result{}, err
			}
		}
		results, err := sim.Run()
		if err != nil {
			return Result{}, err
		}
		phases := market.CollectPhases(results)
		for i := 0; i < nOrders && i < len(phases.AcceptEpochs); i++ {
			ph1[i].Add(phases.AcceptEpochs[i] / 60)
			ph2[i].Add(phases.Processing[i] / 60)
			all[i].Add((phases.AcceptEpochs[i] + phases.Processing[i]) / 60)
		}
	}
	rounds := float64(cfg.Rounds)
	x := make([]float64, nOrders)
	y1 := make([]float64, nOrders)
	y2 := make([]float64, nOrders)
	y3 := make([]float64, nOrders)
	for i := 0; i < nOrders; i++ {
		x[i] = float64(i + 1)
		y1[i] = ph1[i].Sum() / rounds
		y2[i] = ph2[i].Sum() / rounds
		y3[i] = all[i].Sum() / rounds
	}
	fig := textplot.Figure{
		ID:     "fig3",
		Title:  "Worker arrival moments (image filter, $0.05)",
		XLabel: "order",
		YLabel: "latency/min",
		Series: []textplot.Series{
			{Name: "ph1", X: x, Y: y1},
			{Name: "ph2", X: x, Y: y2},
			{Name: "overall", X: x, Y: y3},
		},
	}
	fit, err := numeric.FitLinear(x, y1)
	if err != nil {
		return Result{}, err
	}
	notes := []string{
		fmt.Sprintf("fig3: acceptance-epoch linearity R²=%.4f (paper: 'arrival epochs exhibit linearity')", fit.R2),
		fmt.Sprintf("fig3: mean phase-2 %.2f min, small and flat relative to phase 1 (paper: 'fluctuates in a small range')", numeric.Mean(y2)),
	}
	if fit.R2 < 0.95 {
		notes = append(notes, "WARNING: arrival epochs deviate from linearity")
	}
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}
