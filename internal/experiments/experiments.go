// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 5) on the simulated substrate:
//
//	motivation — Table 1 and the two motivation examples of Sec 1
//	fig2-homo  — Fig 2 (a)–(f), Scenario I, EA vs biased allocations
//	fig2-repe  — Fig 2 (g)–(l), Scenario II, RA vs task-even/rep-even
//	fig2-heter — Fig 2 (m)–(r), Scenario III, HA vs task-even/rep-even
//	fig3       — worker arrival moments (Poisson linearity)
//	fig4       — reward vs latency, λ̂ estimates, linearity support
//	fig5a/b    — difficulty vs phase-1 / phase-2 latency
//	fig5c      — OPT vs equal-payment heuristic on the tuned job
//	linearity  — probe sweep + least squares fit of λo(c)
//
// Each experiment returns plottable series plus free-form notes recording
// the quantities EXPERIMENTS.md compares against the paper.
package experiments

import (
	"fmt"
	"sort"

	"hputune/internal/textplot"
)

// Config tunes experiment fidelity. The zero value is usable; Normalize
// fills defaults.
type Config struct {
	// Seed drives all randomness; equal seeds give identical results.
	Seed uint64
	// Trials is the Monte-Carlo sample count per evaluated point.
	Trials int
	// Rounds is the number of marketplace replications averaged per point.
	Rounds int
	// Fast trims sweeps (fewer budgets/models) for tests and smoke runs.
	Fast bool
}

// Normalize fills zero fields with defaults.
func (c Config) Normalize() Config {
	if c.Seed == 0 {
		c.Seed = 20170419 // ICDE 2017 conference date; any constant works
	}
	if c.Trials == 0 {
		c.Trials = 2000
		if c.Fast {
			c.Trials = 200
		}
	}
	if c.Rounds == 0 {
		c.Rounds = 24
		if c.Fast {
			c.Rounds = 4
		}
	}
	return c
}

// Result is one experiment's output.
type Result struct {
	Figures []textplot.Figure
	Notes   []string
}

// Runner executes one registered experiment.
type Runner func(cfg Config) (Result, error)

// registryEntry pairs a runner with its description.
type registryEntry struct {
	name string
	desc string
	run  Runner
}

var registry []registryEntry

func register(name, desc string, run Runner) {
	registry = append(registry, registryEntry{name: name, desc: desc, run: run})
}

// Names lists registered experiments in registration (paper) order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(name string) (string, error) {
	for _, e := range registry {
		if e.name == name {
			return e.desc, nil
		}
	}
	return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}

// Run executes one experiment by name.
func Run(name string, cfg Config) (Result, error) {
	for _, e := range registry {
		if e.name == name {
			return e.run(cfg.Normalize())
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}

// RunAll executes every registered experiment, returning results keyed by
// name. It stops at the first failure.
func RunAll(cfg Config) (map[string]Result, error) {
	out := make(map[string]Result, len(registry))
	for _, e := range registry {
		res, err := e.run(cfg.Normalize())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.name, err)
		}
		out[e.name] = res
	}
	return out, nil
}

// SortedNames returns the experiment names sorted lexicographically
// (convenience for deterministic CLI listings).
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
