package experiments

import (
	"fmt"

	"hputune/internal/inference"
	"hputune/internal/market"
	"hputune/internal/numeric"
	"hputune/internal/textplot"
	"hputune/internal/workload"
)

func init() {
	register("fig4",
		"Fig 4: reward vs latency on a 10-repetition task ($0.05-$0.12) and λ̂ estimates",
		runFig4)
}

// fig4Rewards are the paper's reward levels in cents.
var fig4Rewards = []int{5, 8, 10, 12}

// runFig4 runs one 10-repetition image-filter task per reward level and
// plots the completion epoch of each repetition against its order,
// averaged over cfg.Rounds replications — the paper's Fig 4. It also
// re-estimates λ at each reward from the on-hold durations, reproducing
// the λ₁..λ₄ ≈ {0.0038, 0.0062, 0.0121, 0.0131} s⁻¹ support for the
// Linearity Hypothesis.
func runFig4(cfg Config) (Result, error) {
	const reps = 10
	class, err := workload.ImageFilterClass(4)
	if err != nil {
		return Result{}, err
	}
	var series []textplot.Series
	var notes []string
	var estRates []float64
	for ri, reward := range fig4Rewards {
		epochs := make([]*numeric.Kahan, reps)
		for i := range epochs {
			epochs[i] = numeric.NewKahan()
		}
		var onholds []float64
		for round := 0; round < cfg.Rounds; round++ {
			sim, err := market.New(market.Config{Seed: cfg.Seed + uint64(ri*1000+round)})
			if err != nil {
				return Result{}, err
			}
			prices := make([]int, reps)
			for i := range prices {
				prices[i] = reward
			}
			err = sim.Post(market.TaskSpec{
				ID:        fmt.Sprintf("fig4-%dc", reward),
				Class:     class,
				RepPrices: prices,
			})
			if err != nil {
				return Result{}, err
			}
			results, err := sim.Run()
			if err != nil {
				return Result{}, err
			}
			for _, res := range results {
				for i, rep := range res.Reps {
					if i < reps {
						epochs[i].Add(rep.Done / 60)
					}
					onholds = append(onholds, rep.OnHold())
				}
			}
		}
		x := make([]float64, reps)
		y := make([]float64, reps)
		for i := 0; i < reps; i++ {
			x[i] = float64(i + 1)
			y[i] = epochs[i].Sum() / float64(cfg.Rounds)
		}
		series = append(series, textplot.Series{
			Name: fmt.Sprintf("$0.%02d", reward),
			X:    x,
			Y:    y,
		})
		est, err := inference.EstimateFromDurations(onholds)
		if err != nil {
			return Result{}, fmt.Errorf("reward %d: %w", reward, err)
		}
		estRates = append(estRates, est.Rate)
		notes = append(notes, fmt.Sprintf("fig4: reward $0.%02d → λ̂o = %.4f s⁻¹ (n=%d)", reward, est.Rate, est.N))
	}
	// Higher rewards must finish sooner: compare final-repetition epochs.
	last := func(s textplot.Series) float64 { return s.Y[len(s.Y)-1] }
	if !(last(series[0]) > last(series[len(series)-1])) {
		notes = append(notes, "WARNING: increasing the reward did not shorten the job")
	} else {
		notes = append(notes, fmt.Sprintf("fig4: total latency falls from %.1f min ($0.05) to %.1f min ($0.12) — 'increase on rewards incurs shorter latencies'",
			last(series[0]), last(series[len(series)-1])))
	}
	xs := make([]float64, len(fig4Rewards))
	for i, r := range fig4Rewards {
		xs[i] = float64(r)
	}
	fit, err := numeric.FitLinear(xs, estRates)
	if err != nil {
		return Result{}, err
	}
	notes = append(notes, fmt.Sprintf("fig4: λ̂o(c) linear fit %s — supports Hypothesis 1", fit))

	fig := textplot.Figure{
		ID:     "fig4",
		Title:  "Money vs latency (10 sequential repetitions)",
		XLabel: "order",
		YLabel: "completion epoch/min",
		Series: series,
	}
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}
