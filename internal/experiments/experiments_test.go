package experiments

import (
	"strings"
	"testing"
)

func fastCfg() Config {
	return Config{Seed: 7, Fast: true, Trials: 150, Rounds: 3}.Normalize()
}

func TestNormalizeDefaults(t *testing.T) {
	c := Config{}.Normalize()
	if c.Seed == 0 || c.Trials == 0 || c.Rounds == 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
	f := Config{Fast: true}.Normalize()
	if f.Trials >= c.Trials || f.Rounds >= c.Rounds {
		t.Errorf("fast mode not cheaper: %+v vs %+v", f, c)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"motivation", "fig2-homo", "fig2-repe", "fig2-heter",
		"fig3", "fig4", "fig5a", "fig5b", "fig5c", "linearity",
	}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("experiment %q not registered (have %v)", w, names)
		}
	}
	for _, n := range names {
		desc, err := Describe(n)
		if err != nil || desc == "" {
			t.Errorf("experiment %q has no description: %v", n, err)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Error("unknown experiment described")
	}
	if _, err := Run("nope", fastCfg()); err == nil {
		t.Error("unknown experiment ran")
	}
	sorted := SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("SortedNames not sorted")
		}
	}
}

func noWarnings(t *testing.T, name string, res Result) {
	t.Helper()
	for _, n := range res.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("%s produced warning: %s", name, n)
		}
	}
}

func TestMotivationReproducesOrdering(t *testing.T) {
	res, err := Run("motivation", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	noWarnings(t, "motivation", res)
	if len(res.Figures) != 1 || len(res.Figures[0].Series) != 2 {
		t.Fatalf("unexpected figure shape: %+v", res.Figures)
	}
	for _, s := range res.Figures[0].Series {
		if len(s.Y) != 2 || s.Y[1] >= s.Y[0] {
			t.Errorf("series %s: case 2 (%v) must beat case 1 (%v)", s.Name, s.Y[1], s.Y[0])
		}
	}
}

func TestFig2HomoOptWins(t *testing.T) {
	res, err := Run("fig2-homo", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	noWarnings(t, "fig2-homo", res)
	if len(res.Figures) != 2 { // fast mode: 2 models
		t.Fatalf("got %d figures in fast mode, want 2", len(res.Figures))
	}
	for _, fig := range res.Figures {
		if len(fig.Series) != 3 {
			t.Fatalf("%s: got %d series", fig.ID, len(fig.Series))
		}
		opt := fig.Series[0]
		for si := 1; si < 3; si++ {
			for i := range opt.Y {
				if opt.Y[i] > fig.Series[si].Y[i]*1.02+1e-9 {
					t.Errorf("%s: opt %.4f worse than %s %.4f at budget %.0f",
						fig.ID, opt.Y[i], fig.Series[si].Name, fig.Series[si].Y[i], opt.X[i])
				}
			}
		}
		// Latency decreases with budget (diminishing but monotone).
		for i := 1; i < len(opt.Y); i++ {
			if opt.Y[i] > opt.Y[i-1]+1e-9 {
				t.Errorf("%s: opt latency rose with budget: %v", fig.ID, opt.Y)
			}
		}
	}
}

func TestFig2RepeOptWins(t *testing.T) {
	res, err := Run("fig2-repe", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	noWarnings(t, "fig2-repe", res)
	for _, fig := range res.Figures {
		opt := fig.Series[0]
		for si := 1; si < len(fig.Series); si++ {
			for i := range opt.Y {
				// RA prices each group uniformly (Algorithm 2), so it can
				// strand up to min(unitCost)-1 budget units that rep-even
				// scatters as +1 increments; that makes several budgets
				// analytic near-ties which fast-mode Monte-Carlo noise
				// (2-3% at 150 trials) decides either way. The win band
				// therefore matches the experiment's own 3% "best-or-tied"
				// criterion. At the tightest budget, and for the non-linear
				// models where the paper itself reports the curves nearly
				// coincide (its case (e) discussion), the band stays wider.
				band := 1.03
				nonLinear := strings.Contains(fig.ID, "p^2") || strings.Contains(fig.ID, "log")
				if opt.X[i] <= 1000 || nonLinear {
					band = 1.06
				}
				if opt.Y[i] > fig.Series[si].Y[i]*band+1e-9 {
					t.Errorf("%s: opt %.4f worse than %s %.4f at budget %.0f",
						fig.ID, opt.Y[i], fig.Series[si].Name, fig.Series[si].Y[i], opt.X[i])
				}
			}
		}
	}
}

func TestFig2HeterOptCompetitive(t *testing.T) {
	res, err := Run("fig2-heter", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Monte-Carlo evaluation: allow a modest noise margin but require the
	// tuned allocation to stay competitive everywhere.
	for _, fig := range res.Figures {
		opt := fig.Series[0]
		for si := 1; si < len(fig.Series); si++ {
			for i := range opt.Y {
				if opt.Y[i] > fig.Series[si].Y[i]*1.10 {
					t.Errorf("%s: opt %.4f far worse than %s %.4f at budget %.0f",
						fig.ID, opt.Y[i], fig.Series[si].Name, fig.Series[si].Y[i], opt.X[i])
				}
			}
		}
	}
}

func TestFig3Linearity(t *testing.T) {
	res, err := Run("fig3", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	noWarnings(t, "fig3", res)
	fig := res.Figures[0]
	if len(fig.Series) != 3 {
		t.Fatalf("got %d series", len(fig.Series))
	}
	// Acceptance epochs increase with order.
	ph1 := fig.Series[0]
	for i := 1; i < len(ph1.Y); i++ {
		if ph1.Y[i] < ph1.Y[i-1] {
			t.Errorf("acceptance epochs not increasing at order %d", i+1)
		}
	}
}

func TestFig4RewardOrdering(t *testing.T) {
	res, err := Run("fig4", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	noWarnings(t, "fig4", res)
	fig := res.Figures[0]
	if len(fig.Series) != 4 {
		t.Fatalf("got %d series", len(fig.Series))
	}
	// Cheapest reward slowest, priciest fastest, at the last order.
	last := func(i int) float64 { return fig.Series[i].Y[len(fig.Series[i].Y)-1] }
	if !(last(0) > last(3)) {
		t.Errorf("$0.05 (%.1f) should be slower than $0.12 (%.1f)", last(0), last(3))
	}
}

func TestFig5aDifficultySlowsAcceptance(t *testing.T) {
	res, err := Run("fig5a", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	noWarnings(t, "fig5a", res)
	if len(res.Figures[0].Series) != 6 {
		t.Fatalf("got %d series, want 6", len(res.Figures[0].Series))
	}
}

func TestFig5bDifficultySlowsProcessing(t *testing.T) {
	res, err := Run("fig5b", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	noWarnings(t, "fig5b", res)
}

func TestFig5cOptBeatsHeuristic(t *testing.T) {
	res, err := Run("fig5c", Config{Seed: 7, Fast: true, Rounds: 12}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	noWarnings(t, "fig5c", res)
	fig := res.Figures[0]
	if len(fig.Series) != 6 {
		t.Fatalf("got %d series, want 6 (OPT/HEU × t1..t3)", len(fig.Series))
	}
}

func TestLinearityExperiment(t *testing.T) {
	res, err := Run("linearity", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	noWarnings(t, "linearity", res)
}

func TestRunAllFast(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow; skipped with -short")
	}
	out, err := RunAll(Config{Seed: 11, Fast: true, Trials: 100, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(Names()) {
		t.Errorf("RunAll returned %d results for %d experiments", len(out), len(Names()))
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Run("fig3", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig3", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Figures[0].Series {
		sa, sb := a.Figures[0].Series[i], b.Figures[0].Series[i]
		for j := range sa.Y {
			if sa.Y[j] != sb.Y[j] {
				t.Fatalf("same seed, different results: %v vs %v", sa.Y[j], sb.Y[j])
			}
		}
	}
}

func TestComparator29GapPositive(t *testing.T) {
	res, err := Run("comparator-29", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Name] = s.Y
	}
	ra, ha, par := series["RA"], series["HA"], series["[29]"]
	if len(ra) == 0 || len(ha) == 0 || len(par) == 0 {
		t.Fatalf("missing series in %v", fig.Series)
	}
	for i := range par {
		best := ra[i]
		if ha[i] < best {
			best = ha[i]
		}
		if par[i] < best-1e-9 {
			t.Errorf("budget point %d: [29] %v beat H-Tuning best %v", i, par[i], best)
		}
	}
	// On a chain-heavy workload the gap should be material somewhere.
	worst := 0.0
	for i := range par {
		best := ra[i]
		if ha[i] < best {
			best = ha[i]
		}
		if g := par[i]/best - 1; g > worst {
			worst = g
		}
	}
	if worst < 0.05 {
		t.Errorf("worst [29] gap only %.1f%%, expected > 5%%", 100*worst)
	}
}

func TestRetainerCrossover(t *testing.T) {
	res, err := Run("retainer", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Name] = s.Y
	}
	posted, pooled := series["posted"], series["retainer"]
	if len(posted) != len(pooled) || len(posted) == 0 {
		t.Fatalf("bad series shapes: %v", fig.Series)
	}
	// Posted-price improves with budget; the retainer saturates and wins
	// once fees afford enough workers.
	for i := 1; i < len(posted); i++ {
		if posted[i] > posted[i-1]+1e-9 {
			t.Errorf("posted latency rose with budget at point %d: %v -> %v", i, posted[i-1], posted[i])
		}
		if pooled[i] > pooled[i-1]+1e-9 {
			t.Errorf("retainer latency rose with budget at point %d: %v -> %v", i, pooled[i-1], pooled[i])
		}
	}
	last := len(posted) - 1
	if pooled[last] >= posted[last] {
		t.Errorf("at the largest budget the retainer (%v) should beat posted price (%v)", pooled[last], posted[last])
	}
}

func TestAbandonmentRobustness(t *testing.T) {
	res, err := Run("abandonment", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Name] = s.Y
	}
	opt, bias := series["opt"], series["bias"]
	if len(opt) != len(bias) || len(opt) < 2 {
		t.Fatalf("bad series shapes: %v", fig.Series)
	}
	// Injected abandonment must slow both allocations down.
	last := len(opt) - 1
	if opt[last] <= opt[0] {
		t.Errorf("opt did not slow under abandonment: %v -> %v", opt[0], opt[last])
	}
	if bias[last] <= bias[0] {
		t.Errorf("bias did not slow under abandonment: %v -> %v", bias[0], bias[last])
	}
	// The tuned allocation must keep its lead at the heaviest injection.
	if opt[last] > bias[last] {
		t.Errorf("EA lost under abandonment: %v > %v", opt[last], bias[last])
	}
}

func TestHeavyTailRobustness(t *testing.T) {
	res, err := Run("heavytail", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Name] = s.Y
	}
	opt, bias := series["opt"], series["bias"]
	if len(opt) != len(bias) || len(opt) < 2 {
		t.Fatalf("bad series shapes: %v", fig.Series)
	}
	// The heavier tail must slow both allocations and EA must keep its
	// lead at the exponential baseline (first point).
	last := len(opt) - 1
	if opt[last] <= opt[0] {
		t.Errorf("opt did not slow under heavy tails: %v -> %v", opt[0], opt[last])
	}
	if opt[0] > bias[0] {
		t.Errorf("EA lost at the exponential baseline: %v > %v", opt[0], bias[0])
	}
}
