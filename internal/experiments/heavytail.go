package experiments

import (
	"fmt"

	"hputune/internal/dist"
	"hputune/internal/htuning"
	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
	"hputune/internal/stats"
	"hputune/internal/textplot"
	"hputune/internal/workload"
)

func init() {
	register("heavytail",
		"extension: does EA's win survive heavy-tailed (log-normal) processing latencies?",
		runHeavyTail)
}

// runHeavyTail swaps the HPU model's exponential processing for
// log-normal latencies of growing coefficient of variation while keeping
// the mean fixed, and re-runs the EA-vs-bias comparison. Payment only
// moves the on-hold phase, so EA keeps its edge — but the edge shrinks
// as the tail grows, because the makespan (a max over 500 repetitions)
// is increasingly set by processing draws no payment can shorten. That
// shrinkage is the finding; the makespan estimator uses the median over
// rounds because heavy-tailed maxima make round means very noisy.
// CV = 1 is the exponential baseline.
func runHeavyTail(cfg Config) (Result, error) {
	cfg = cfg.Normalize()
	cvs := []float64{1, 2, 3}
	if cfg.Fast {
		cvs = []float64{1, 3}
	}
	const budget = 3000
	const procMean = 0.5 // matches the paper's λp = 2.0
	p, err := workload.Fig2Problem(workload.Homogeneous, pricing.Linear{K: 1, B: 1}, budget)
	if err != nil {
		return Result{}, err
	}
	opt, err := htuning.EvenAllocation(p)
	if err != nil {
		return Result{}, err
	}
	bias, err := htuning.BiasAllocation(p, 0.75, randx.New(cfg.Seed+177))
	if err != nil {
		return Result{}, err
	}

	var xs, optY, biasY []float64
	optWins := 0
	for ci, cv := range cvs {
		var proc dist.Distribution
		if cv != 1 {
			ln, err := dist.LogNormalFromMoments(procMean, cv)
			if err != nil {
				return Result{}, err
			}
			proc = ln
		}
		rounds := cfg.Rounds * 3
		runOne := func(a htuning.Allocation, salt uint64) ([]float64, error) {
			specs, err := workload.SpecsForAllocation(p, a, 1)
			if err != nil {
				return nil, err
			}
			// Override every spec's class processing distribution.
			for i := range specs {
				class := *specs[i].Class
				class.Proc = proc
				specs[i].Class = &class
			}
			spans := make([]float64, rounds)
			for round := range spans {
				sim, err := market.New(market.Config{
					Seed: cfg.Seed + salt + uint64(ci*10000+round)*0x9e3779b9,
				})
				if err != nil {
					return nil, err
				}
				if err := sim.PostAll(specs); err != nil {
					return nil, err
				}
				if _, err := sim.Run(); err != nil {
					return nil, err
				}
				spans[round] = sim.Makespan()
			}
			return spans, nil
		}
		optSpans, err := runOne(opt, 11)
		if err != nil {
			return Result{}, fmt.Errorf("heavytail cv=%v opt: %w", cv, err)
		}
		biasSpans, err := runOne(bias, 22)
		if err != nil {
			return Result{}, fmt.Errorf("heavytail cv=%v bias: %w", cv, err)
		}
		optLat, err := stats.Quantile(optSpans, 0.5)
		if err != nil {
			return Result{}, err
		}
		biasLat, err := stats.Quantile(biasSpans, 0.5)
		if err != nil {
			return Result{}, err
		}
		xs = append(xs, cv)
		optY = append(optY, optLat)
		biasY = append(biasY, biasLat)
		if optLat <= biasLat {
			optWins++
		}
	}
	fig := textplot.Figure{
		ID:     "heavytail",
		Title:  "EA vs bias(0.75) under log-normal processing (mean fixed, CV swept)",
		XLabel: "processing CV",
		YLabel: "makespan",
		Series: []textplot.Series{
			{Name: "opt", X: xs, Y: optY},
			{Name: "bias", X: xs, Y: biasY},
		},
	}
	notes := []string{
		fmt.Sprintf("heavytail: EA won (median makespan) at %d/%d tail levels", optWins, len(cvs)),
		"expected shape: both curves rise with the tail (max over 500 repetitions) and EA stays at-or-below bias, but its relative edge shrinks — payment moves only the on-hold phase, and a heavier processing tail owns a growing share of the makespan",
	}
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}
