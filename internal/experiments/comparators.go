package experiments

import (
	"fmt"

	"hputune/internal/deadline"
	"hputune/internal/htuning"
	"hputune/internal/pricing"
	"hputune/internal/retainer"
	"hputune/internal/textplot"
)

func init() {
	register("comparator-29",
		"extension: RA/HA vs the acceptance-only pure-parallel pricing of [29] on a chain-heavy job",
		runComparator29)
	register("retainer",
		"extension: posted-price tuning vs a prepaid retainer pool ([26-28]) on one batch",
		runRetainer)
}

// runComparator29 sweeps budgets on a workload with long sequential
// repetition chains, where the pure-parallel assumption of [29] is most
// wrong: it models a task's k repetitions as k independent clocks, which
// undercounts chain latency by roughly k/H_k and so underpays the chain
// group. All allocations are scored with the exact wall-clock E[max]
// under the true sequential model.
func runComparator29(cfg Config) (Result, error) {
	cfg = cfg.Normalize()
	vote := &htuning.TaskType{
		Name:     "vote",
		Accept:   pricing.Linear{K: 1, B: 1},
		ProcRate: 4,
	}
	groups := []htuning.Group{
		{Type: vote, Tasks: 3, Reps: 12},
		{Type: vote, Tasks: 40, Reps: 2},
	}
	budgets := []int{300, 450, 600, 900, 1200, 1800}
	if cfg.Fast {
		budgets = []int{300, 600, 1200}
	}
	est := htuning.NewEstimator()
	series := map[string][]float64{}
	xs := make([]float64, 0, len(budgets))
	worstGap, bestGap := 0.0, 1e18
	for _, b := range budgets {
		p := htuning.Problem{Groups: groups, Budget: b}
		ra, err := htuning.SolveRepetition(est, p)
		if err != nil {
			return Result{}, fmt.Errorf("budget %d: RA: %w", b, err)
		}
		ha, err := htuning.SolveHeterogeneous(est, p)
		if err != nil {
			return Result{}, fmt.Errorf("budget %d: HA: %w", b, err)
		}
		par, err := deadline.MinimizeExpectedMax(p)
		if err != nil {
			return Result{}, fmt.Errorf("budget %d: [29]: %w", b, err)
		}
		score := func(prices []int) (float64, error) {
			return est.JobExpectedLatency(groups, prices, htuning.PhaseBoth)
		}
		raW, err := score(ra.Prices)
		if err != nil {
			return Result{}, err
		}
		haW, err := score(ha.Prices)
		if err != nil {
			return Result{}, err
		}
		parW, err := score(par.Prices)
		if err != nil {
			return Result{}, err
		}
		xs = append(xs, float64(b))
		series["RA"] = append(series["RA"], raW)
		series["HA"] = append(series["HA"], haW)
		series["[29]"] = append(series["[29]"], parW)
		best := raW
		if haW < best {
			best = haW
		}
		gap := parW/best - 1
		if gap > worstGap {
			worstGap = gap
		}
		if gap < bestGap {
			bestGap = gap
		}
	}
	fig := textplot.Figure{
		ID:     "comparator-29",
		Title:  "Wall-clock E[max]: H-Tuning vs [29] pure-parallel pricing",
		XLabel: "budget",
		YLabel: "latency",
		Series: []textplot.Series{
			{Name: "RA", X: xs, Y: series["RA"]},
			{Name: "HA", X: xs, Y: series["HA"]},
			{Name: "[29]", X: xs, Y: series["[29]"]},
		},
	}
	notes := []string{
		fmt.Sprintf("comparator-29: [29] trails the best H-Tuning allocation by %.1f%%-%.1f%% across budgets",
			100*bestGap, 100*worstGap),
		"expected shape: gap positive everywhere; RA and HA nearly coincide (both find the chain-heavy split the pure-parallel model misses)",
	}
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}

// runRetainer compares one batch of single-repetition tasks run two ways
// under the same expected-cost budget: posted-price (Scenario I even
// allocation; latency = on-hold + processing) versus a prepaid retainer
// pool sized to the budget (no on-hold phase, but fees buy capacity).
// The retainer's makespan floors at the full-parallelism limit H_n/μ once
// fees afford n workers; posted-price keeps improving as higher pay
// shrinks the on-hold phase, but never below its own processing floor.
func runRetainer(cfg Config) (Result, error) {
	cfg = cfg.Normalize()
	const n = 100
	const mu = 2.0
	const fee = 1.0
	accept := pricing.Linear{K: 1, B: 1}
	typ := &htuning.TaskType{Name: "vote", Accept: accept, ProcRate: mu}
	est := htuning.NewEstimator()
	budgets := []int{150, 200, 300, 500, 800, 1200}
	if cfg.Fast {
		budgets = []int{150, 300, 800}
	}
	var xs, posted, pooled []float64
	crossover := -1
	for _, b := range budgets {
		// Posted price: every task pays b/n (Scenario I optimum).
		group := htuning.Group{Type: typ, Tasks: n, Reps: 1}
		postedLat, err := est.GroupTotalMean(group, b/n)
		if err != nil {
			return Result{}, fmt.Errorf("budget %d: posted: %w", b, err)
		}
		// Retainer: task payment 1 unit, rest of the budget buys pool
		// time; pick the best feasible pool of at most n workers.
		choice, err := retainer.OptimizePoolSize(n, float64(b), mu, fee, 1, n)
		if err != nil {
			return Result{}, fmt.Errorf("budget %d: retainer: %w", b, err)
		}
		xs = append(xs, float64(b))
		posted = append(posted, postedLat)
		pooled = append(pooled, choice.Makespan)
		if crossover < 0 && choice.Makespan < postedLat {
			crossover = b
		}
	}
	fig := textplot.Figure{
		ID:     "retainer",
		Title:  "Batch makespan: posted-price EA vs retainer pool, equal budget",
		XLabel: "budget",
		YLabel: "makespan",
		Series: []textplot.Series{
			{Name: "posted", X: xs, Y: posted},
			{Name: "retainer", X: xs, Y: pooled},
		},
	}
	notes := []string{
		"retainer: expected shape — retainer flat near H_n/mu once fees afford ~n workers; posted-price decays with budget toward its processing floor",
	}
	if crossover >= 0 {
		notes = append(notes, fmt.Sprintf("retainer: pool beats posted price from budget %d on", crossover))
	} else {
		notes = append(notes, "retainer: posted price held the lead on every swept budget")
	}
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}
