package experiments

import (
	"fmt"

	"hputune/internal/dist"
	"hputune/internal/numeric"
	"hputune/internal/pricing"
	"hputune/internal/textplot"
)

func init() {
	register("motivation",
		"Table 1 and the two motivation examples of Sec 1 (budget splits on tiny jobs)",
		runMotivation)
}

// maxOfTwo returns E[max(X, Y)] for independent non-negative X, Y by the
// survival-form integral.
func maxOfTwo(x, y dist.Distribution) (float64, error) {
	return numeric.IntegrateToInf(func(t float64) float64 {
		return 1 - x.CDF(t)*y.CDF(t)
	}, 0, 1e-10)
}

// runMotivation reproduces the Sec 1 examples with the Table 1 rates:
//
// Example 1 (repetition): tasks {o1,o2}×1 and {o3,o4}×2, budget $6.
// Case 1 splits evenly per task ($3 + $3, so the 2-rep task pays $1.5 per
// repetition); case 2 splits evenly per repetition ($2 + $4). The paper
// reports case 2 winning (2.25s vs 2.93s).
//
// Example 2 (heterogeneous): one sorting vote and one yes/no vote, both
// single-repetition, budget $6. Case 1 pays $3 + $3; case 2 pays the
// harder sorting task $4 and the filter $2. The paper reports case 2
// winning (2.7s vs 3.5s).
func runMotivation(cfg Config) (Result, error) {
	sortT := pricing.SortVoteTable()
	yesNo := pricing.YesNoVoteTable()

	// --- Example 1: phase-1 only, identical task nature. ---
	ex1 := func(p1, perRep2 float64) (float64, error) {
		t1, err := dist.NewExponential(sortT.Rate(p1))
		if err != nil {
			return 0, err
		}
		t2, err := dist.NewErlang(2, sortT.Rate(perRep2))
		if err != nil {
			return 0, err
		}
		return maxOfTwo(t1, t2)
	}
	case1, err := ex1(3, 1.5) // $3 to each task; 2-rep task pays $1.5/rep
	if err != nil {
		return Result{}, fmt.Errorf("example 1 case 1: %w", err)
	}
	case2, err := ex1(2, 2) // $2 per repetition everywhere
	if err != nil {
		return Result{}, fmt.Errorf("example 1 case 2: %w", err)
	}

	// --- Example 2: heterogeneous, include processing phase. The paper's
	// premise: the yes/no vote is processed faster than the sorting vote.
	// Processing rates are set so the sorting task's processing time
	// dominates (2s vs 1s mean) — without that dominance the extra dollar
	// on the sort task cannot pay off, and the paper's case-2-wins
	// ordering cannot emerge under any reading of Table 1. ---
	const (
		procSort  = 0.5
		procYesNo = 1.0
	)
	ex2 := func(priceSort, priceFilter float64) (float64, error) {
		s, err := dist.NewHypoexponential(sortT.Rate(priceSort), procSort)
		if err != nil {
			return 0, err
		}
		f, err := dist.NewHypoexponential(yesNo.Rate(priceFilter), procYesNo)
		if err != nil {
			return 0, err
		}
		return maxOfTwo(s, f)
	}
	hCase1, err := ex2(3, 3)
	if err != nil {
		return Result{}, fmt.Errorf("example 2 case 1: %w", err)
	}
	hCase2, err := ex2(4, 2)
	if err != nil {
		return Result{}, fmt.Errorf("example 2 case 2: %w", err)
	}

	fig := textplot.Figure{
		ID:     "motivation",
		Title:  "Motivation examples: expected job latency per budget split",
		XLabel: "case",
		YLabel: "E[latency]",
		Series: []textplot.Series{
			{Name: "example1", X: []float64{1, 2}, Y: []float64{case1, case2}},
			{Name: "example2", X: []float64{1, 2}, Y: []float64{hCase1, hCase2}},
		},
	}
	notes := []string{
		fmt.Sprintf("example 1: case1(E)=%.4f case2(E)=%.4f — paper: 2.93 vs 2.25 (case 2 wins)", case1, case2),
		fmt.Sprintf("example 2: case1(E)=%.4f case2(E)=%.4f — paper: 3.5 vs 2.7 (case 2 wins)", hCase1, hCase2),
		"absolute values differ from the paper (its Example-1 formula is garbled in the text); the ordering and win margins are the reproducible claims",
	}
	if case2 >= case1 {
		notes = append(notes, "WARNING: example 1 ordering does not match the paper")
	}
	if hCase2 >= hCase1 {
		notes = append(notes, "WARNING: example 2 ordering does not match the paper")
	}
	_ = cfg
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}
