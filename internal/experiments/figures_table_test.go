package experiments

import (
	"testing"

	"hputune/internal/textplot"
)

// figureCase declares the structural contract of one experiment's
// figures: how many figures and series it emits, whether the latency
// curves must fall as the budget grows, and (always) determinism under
// a fixed seed. Shapes here are pinned for fast mode, the configuration
// CI runs.
type figureCase struct {
	name string
	// figures is the expected figure count in fast mode (0 = at least one).
	figures int
	// seriesPerFigure is the expected series count per figure (0 = skip).
	seriesPerFigure int
	// budgetMonotone asserts every series is a latency-vs-budget curve
	// that must not rise as the budget grows (within tol).
	budgetMonotone bool
	// xStrictlyIncreasing asserts each series' X axis is a proper sweep.
	xStrictlyIncreasing bool
	// cfg overrides fastCfg for experiments needing different fidelity.
	cfg *Config
}

var figureCases = []figureCase{
	{name: "motivation", figures: 1, seriesPerFigure: 2},
	{name: "fig2-homo", figures: 2, seriesPerFigure: 3, budgetMonotone: true, xStrictlyIncreasing: true},
	{name: "fig2-repe", figures: 2, seriesPerFigure: 3, xStrictlyIncreasing: true},
	{name: "fig2-heter", figures: 2, seriesPerFigure: 3, xStrictlyIncreasing: true},
	{name: "fig3", figures: 1, seriesPerFigure: 3, xStrictlyIncreasing: true},
	{name: "fig4", figures: 1, seriesPerFigure: 4, xStrictlyIncreasing: true},
	{name: "fig5a", figures: 1, seriesPerFigure: 6, xStrictlyIncreasing: true},
	{name: "fig5b", figures: 1, seriesPerFigure: 6, xStrictlyIncreasing: true},
	{name: "fig5c", figures: 1, seriesPerFigure: 6,
		cfg: &Config{Seed: 7, Fast: true, Rounds: 12}},
	{name: "linearity", figures: 1},
	{name: "comparator-29", figures: 1, xStrictlyIncreasing: true},
	{name: "retainer", figures: 1, seriesPerFigure: 2, budgetMonotone: true, xStrictlyIncreasing: true},
	{name: "abandonment", figures: 1, seriesPerFigure: 2, xStrictlyIncreasing: true},
	{name: "heavytail", figures: 1, seriesPerFigure: 2, xStrictlyIncreasing: true},
}

func (tc figureCase) config() Config {
	if tc.cfg != nil {
		return tc.cfg.Normalize()
	}
	return fastCfg()
}

// checkShape validates one run's figures against the declared contract.
func (tc figureCase) checkShape(t *testing.T, figs []textplot.Figure) {
	t.Helper()
	if len(figs) == 0 {
		t.Fatal("experiment produced no figures")
	}
	if tc.figures > 0 && len(figs) != tc.figures {
		t.Fatalf("got %d figures, want %d", len(figs), tc.figures)
	}
	for _, fig := range figs {
		if fig.ID == "" {
			t.Errorf("figure has empty ID: %+v", fig)
		}
		if tc.seriesPerFigure > 0 && len(fig.Series) != tc.seriesPerFigure {
			t.Errorf("%s: got %d series, want %d", fig.ID, len(fig.Series), tc.seriesPerFigure)
		}
		for _, s := range fig.Series {
			if len(s.X) != len(s.Y) {
				t.Errorf("%s/%s: len(X)=%d != len(Y)=%d", fig.ID, s.Name, len(s.X), len(s.Y))
				continue
			}
			if len(s.Y) == 0 {
				t.Errorf("%s/%s: empty series", fig.ID, s.Name)
				continue
			}
			if tc.xStrictlyIncreasing {
				for i := 1; i < len(s.X); i++ {
					if s.X[i] <= s.X[i-1] {
						t.Errorf("%s/%s: X not strictly increasing at %d: %v", fig.ID, s.Name, i, s.X)
						break
					}
				}
			}
			if tc.budgetMonotone {
				for i := 1; i < len(s.Y); i++ {
					if s.Y[i] > s.Y[i-1]+1e-9 {
						t.Errorf("%s/%s: latency rose with budget at %d: %v -> %v",
							fig.ID, s.Name, i, s.Y[i-1], s.Y[i])
						break
					}
				}
			}
		}
	}
}

// TestFigureShapes runs every registered experiment in fast mode and
// checks the declared structural contract plus seed determinism (two
// runs, identical series values).
func TestFigureShapes(t *testing.T) {
	covered := map[string]bool{}
	for _, tc := range figureCases {
		covered[tc.name] = true
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.config()
			res, err := Run(tc.name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tc.checkShape(t, res.Figures)

			again, err := Run(tc.name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(again.Figures) != len(res.Figures) {
				t.Fatalf("re-run changed figure count: %d vs %d", len(res.Figures), len(again.Figures))
			}
			for fi, fig := range res.Figures {
				for si, s := range fig.Series {
					b := again.Figures[fi].Series[si]
					if s.Name != b.Name {
						t.Fatalf("re-run changed series name: %q vs %q", s.Name, b.Name)
					}
					for i := range s.Y {
						if s.Y[i] != b.Y[i] || s.X[i] != b.X[i] {
							t.Fatalf("%s/%s: same seed, different point %d: (%v,%v) vs (%v,%v)",
								fig.ID, s.Name, i, s.X[i], s.Y[i], b.X[i], b.Y[i])
						}
					}
				}
			}
		})
	}
	// The table must track the registry: a new experiment without a
	// declared contract fails here, not silently.
	for _, name := range Names() {
		if !covered[name] {
			t.Errorf("experiment %q has no figureCase entry; declare its shape contract", name)
		}
	}
}
