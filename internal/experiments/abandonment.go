package experiments

import (
	"fmt"

	"hputune/internal/htuning"
	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
	"hputune/internal/textplot"
	"hputune/internal/workload"
)

func init() {
	register("abandonment",
		"extension: does EA's win survive worker abandonment the HPU model does not know about?",
		runAbandonment)
}

// runAbandonment injects a failure mode the paper's model omits — an
// accepting worker returns the repetition unfinished with probability q,
// and the repetition goes back on hold — and measures whether the tuned
// (EA) allocation keeps beating the biased baseline as q grows. The HPU
// model under abandonment is still exponential-ish per phase (a geometric
// number of exponential retries is again exponential with a thinned
// rate), which is why the tuning survives: abandonment rescales every
// group's effective acceptance rate by the same 1−q factor and EA's
// optimality argument is scale-free.
func runAbandonment(cfg Config) (Result, error) {
	cfg = cfg.Normalize()
	probs := []float64{0, 0.2, 0.4, 0.6}
	if cfg.Fast {
		probs = []float64{0, 0.4}
	}
	const budget = 3000
	p, err := workload.Fig2Problem(workload.Homogeneous, pricing.Linear{K: 1, B: 1}, budget)
	if err != nil {
		return Result{}, err
	}
	opt, err := htuning.EvenAllocation(p)
	if err != nil {
		return Result{}, err
	}
	bias, err := htuning.BiasAllocation(p, 0.75, randx.New(cfg.Seed+77))
	if err != nil {
		return Result{}, err
	}

	var xs, optY, biasY []float64
	optWins := 0
	for pi, q := range probs {
		runOne := func(a htuning.Allocation, salt uint64) (float64, error) {
			specs, err := workload.SpecsForAllocation(p, a, 1)
			if err != nil {
				return 0, err
			}
			return market.RepeatedMakespan(cfg.Rounds, func(round int) (float64, error) {
				mcfg := market.Config{
					Seed: cfg.Seed + salt + uint64(pi*1000+round)*0x9e3779b9,
				}
				if q > 0 {
					mcfg.AbandonProb = q
					mcfg.AbandonRate = 4
				}
				sim, err := market.New(mcfg)
				if err != nil {
					return 0, err
				}
				if err := sim.PostAll(specs); err != nil {
					return 0, err
				}
				if _, err := sim.Run(); err != nil {
					return 0, err
				}
				return sim.Makespan(), nil
			})
		}
		optLat, err := runOne(opt, 1)
		if err != nil {
			return Result{}, fmt.Errorf("abandonment q=%v opt: %w", q, err)
		}
		biasLat, err := runOne(bias, 2)
		if err != nil {
			return Result{}, fmt.Errorf("abandonment q=%v bias: %w", q, err)
		}
		xs = append(xs, q)
		optY = append(optY, optLat)
		biasY = append(biasY, biasLat)
		if optLat <= biasLat {
			optWins++
		}
	}
	fig := textplot.Figure{
		ID:     "abandonment",
		Title:  "EA vs bias(0.75) under injected worker abandonment",
		XLabel: "abandon probability",
		YLabel: "makespan",
		Series: []textplot.Series{
			{Name: "opt", X: xs, Y: optY},
			{Name: "bias", X: xs, Y: biasY},
		},
	}
	notes := []string{
		fmt.Sprintf("abandonment: EA won at %d/%d abandonment levels", optWins, len(probs)),
		"expected shape: both curves rise with q (retry loops), EA stays below bias — abandonment thins every group's acceptance rate by the same factor, so the even split stays optimal",
	}
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}
