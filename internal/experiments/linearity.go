package experiments

import (
	"fmt"

	"hputune/internal/inference"
	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/textplot"
)

func init() {
	register("linearity",
		"Hypothesis 1: probe sweep estimating λo(c) and its least-squares linearity fit",
		runLinearity)
}

// runLinearity validates the inference pipeline end to end: a probe task
// class with a known linear ground truth λo(c) = 0.9c + 0.4 is swept over
// prices on the simulated market; the recovered rates must fit a line
// with slope/intercept near the truth and R² near 1 (Sec 3.3.2).
func runLinearity(cfg Config) (Result, error) {
	truth := pricing.Linear{K: 0.9, B: 0.4}
	class := &market.TaskClass{
		Name:     "probe",
		Accept:   truth,
		ProcRate: 1e6, // probes are submitted immediately (Sec 3.3.1)
		Accuracy: 1,
	}
	tasks := 120 * cfg.Rounds
	probe := inference.Probe{Class: class, Tasks: tasks, Seed: cfg.Seed}
	prices := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Fast {
		prices = []int{1, 3, 5, 7}
	}
	sweep, err := probe.SweepLinearity(prices, tasks)
	if err != nil {
		return Result{}, err
	}
	truthY := make([]float64, len(sweep.Prices))
	for i, p := range sweep.Prices {
		truthY[i] = truth.Rate(p)
	}
	fig := textplot.Figure{
		ID:     "linearity",
		Title:  "Probe-estimated λo(c) vs ground truth",
		XLabel: "price",
		YLabel: "λo",
		Series: []textplot.Series{
			{Name: "estimated", X: sweep.Prices, Y: sweep.Rates},
			{Name: "truth", X: sweep.Prices, Y: truthY},
		},
	}
	notes := []string{
		fmt.Sprintf("linearity: fit %s (truth slope %.2f intercept %.2f)", sweep.Fit, truth.K, truth.B),
	}
	if sweep.Fit.R2 < 0.97 {
		notes = append(notes, "WARNING: linearity fit below R²=0.97")
	}
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}
