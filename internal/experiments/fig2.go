package experiments

import (
	"fmt"

	"hputune/internal/htuning"
	"hputune/internal/pricing"
	"hputune/internal/randx"
	"hputune/internal/textplot"
	"hputune/internal/workload"
)

func init() {
	register("fig2-homo",
		"Fig 2 (a)-(f): Scenario I, EA vs biased splits over six price-rate models",
		func(cfg Config) (Result, error) { return runFig2(cfg, workload.Homogeneous) })
	register("fig2-repe",
		"Fig 2 (g)-(l): Scenario II, RA vs task-even/rep-even",
		func(cfg Config) (Result, error) { return runFig2(cfg, workload.Repetition) })
	register("fig2-heter",
		"Fig 2 (m)-(r): Scenario III, HA vs task-even/rep-even",
		func(cfg Config) (Result, error) { return runFig2(cfg, workload.Heterogeneous) })
}

// fig2Models returns the panel models, trimmed in fast mode.
func fig2Models(cfg Config) []pricing.RateModel {
	models := pricing.SyntheticModels()
	if cfg.Fast {
		return []pricing.RateModel{models[0], models[4]} // one linear, one non-linear
	}
	return models
}

func fig2Budgets(cfg Config) []int {
	budgets := workload.Fig2Budgets()
	if cfg.Fast {
		return []int{budgets[0], budgets[4], budgets[8]}
	}
	return budgets
}

// runFig2 regenerates one Fig 2 row (six panels = one figure per model).
// Every strategy — tuned and baseline — is materialized as a concrete
// discrete allocation on the paper's payment grid and scored by Monte
// Carlo simulation of the full job (max over task latencies), with a
// shared seed per budget so comparisons are paired.
func runFig2(cfg Config, scenario workload.Scenario) (Result, error) {
	var res Result
	for _, model := range fig2Models(cfg) {
		fig, notes, err := fig2Panel(cfg, scenario, model)
		if err != nil {
			return Result{}, fmt.Errorf("fig2 %s (%s): %w", scenario, model.Name(), err)
		}
		res.Figures = append(res.Figures, fig)
		res.Notes = append(res.Notes, notes...)
	}
	return res, nil
}

// fig2Phase: Scenarios I and II tune (and are scored on) the on-hold
// phase — processing time is iid across all tasks there, exactly the
// paper's argument for dropping it. Scenario III is scored on wall-clock
// latency because difficulty differences make processing allocation-
// relevant.
func fig2Phase(scenario workload.Scenario) htuning.Phase {
	if scenario == workload.Heterogeneous {
		return htuning.PhaseBoth
	}
	return htuning.PhaseOnHold
}

// fig2Panel evaluates one (scenario, model) panel over the budget sweep.
func fig2Panel(cfg Config, scenario workload.Scenario, model pricing.RateModel) (textplot.Figure, []string, error) {
	budgets := fig2Budgets(cfg)
	est := htuning.NewEstimator()

	var seriesNames []string
	switch scenario {
	case workload.Homogeneous:
		seriesNames = []string{"opt", "bias_1", "bias_2"}
	default:
		seriesNames = []string{"opt", "te", "re"}
	}
	series := make([]textplot.Series, len(seriesNames))
	for i, n := range seriesNames {
		series[i] = textplot.Series{Name: n}
	}

	var notes []string
	optWins := 0
	for _, budget := range budgets {
		p, err := workload.Fig2Problem(scenario, model, budget)
		if err != nil {
			return textplot.Figure{}, nil, err
		}
		allocs, err := fig2Allocations(est, p, scenario, cfg.Seed)
		if err != nil {
			return textplot.Figure{}, nil, err
		}
		if len(allocs) != len(series) {
			return textplot.Figure{}, nil, fmt.Errorf("internal: %d allocations for %d series", len(allocs), len(series))
		}
		lats := make([]float64, len(allocs))
		for si, a := range allocs {
			// Shared seed per budget pairs the strategies' noise.
			r := randx.New(cfg.Seed ^ (uint64(budget) * 0x9e3779b97f4a7c15))
			lat, err := htuning.SimulateJobLatency(p, a, fig2Phase(scenario), cfg.Trials, r)
			if err != nil {
				return textplot.Figure{}, nil, fmt.Errorf("budget %d strategy %s: %w", budget, seriesNames[si], err)
			}
			lats[si] = lat
			series[si].X = append(series[si].X, float64(budget))
			series[si].Y = append(series[si].Y, lat)
		}
		best := true
		for si := 1; si < len(lats); si++ {
			if lats[0] > lats[si]*1.03 {
				best = false
			}
		}
		if best {
			optWins++
		}
	}
	notes = append(notes, fmt.Sprintf("fig2-%s(%s): opt best-or-tied (3%% band) at %d/%d budgets",
		scenario, model.Name(), optWins, len(budgets)))

	fig := textplot.Figure{
		ID:     fmt.Sprintf("fig2-%s-%s", scenario, model.Name()),
		Title:  fmt.Sprintf("Scenario %s under λo(p) = %s", scenario, model.Name()),
		XLabel: "budget",
		YLabel: "latency",
		Series: series,
	}
	return fig, notes, nil
}

// fig2Allocations produces the strategies' concrete discrete allocations
// for one problem instance, in series order.
func fig2Allocations(est *htuning.Estimator, p htuning.Problem, scenario workload.Scenario, seed uint64) ([]htuning.Allocation, error) {
	switch scenario {
	case workload.Homogeneous:
		opt, err := htuning.EvenAllocation(p)
		if err != nil {
			return nil, fmt.Errorf("EA: %w", err)
		}
		b1, err := htuning.BiasAllocation(p, 0.67, randx.New(seed+1))
		if err != nil {
			return nil, fmt.Errorf("bias 0.67: %w", err)
		}
		b2, err := htuning.BiasAllocation(p, 0.75, randx.New(seed+2))
		if err != nil {
			return nil, fmt.Errorf("bias 0.75: %w", err)
		}
		return []htuning.Allocation{opt, b1, b2}, nil
	case workload.Repetition, workload.Heterogeneous:
		var opt htuning.Allocation
		if scenario == workload.Heterogeneous {
			res, err := htuning.SolveHeterogeneous(est, p)
			if err != nil {
				return nil, fmt.Errorf("HA: %w", err)
			}
			opt, err = res.Allocation(p)
			if err != nil {
				return nil, err
			}
		} else {
			res, err := htuning.SolveRepetition(est, p)
			if err != nil {
				return nil, fmt.Errorf("RA: %w", err)
			}
			var aerr error
			opt, aerr = res.Allocation(p)
			if aerr != nil {
				return nil, aerr
			}
		}
		te, err := htuning.TaskEvenAllocation(p)
		if err != nil {
			return nil, fmt.Errorf("task-even: %w", err)
		}
		re, err := htuning.RepEvenAllocation(p)
		if err != nil {
			return nil, fmt.Errorf("rep-even: %w", err)
		}
		return []htuning.Allocation{opt, te, re}, nil
	}
	return nil, fmt.Errorf("unknown scenario %d", scenario)
}
