package experiments

import (
	"fmt"

	"hputune/internal/htuning"
	"hputune/internal/market"
	"hputune/internal/numeric"
	"hputune/internal/textplot"
	"hputune/internal/workload"
)

func init() {
	register("fig5a",
		"Fig 5(a): task difficulty (4/6/8 votes) vs phase-1 latency at $0.05 and $0.08",
		func(cfg Config) (Result, error) { return runFig5Difficulty(cfg, phase1) })
	register("fig5b",
		"Fig 5(b): task difficulty (4/6/8 votes) vs phase-2 latency at $0.05 and $0.08",
		func(cfg Config) (Result, error) { return runFig5Difficulty(cfg, phase2) })
	register("fig5c",
		"Fig 5(c): tuned allocation (OPT) vs equal-payment heuristic (HEU), budgets $6-$10",
		runFig5c)
}

type fig5Phase int

const (
	phase1 fig5Phase = iota
	phase2
)

// runFig5Difficulty posts 10 single-repetition tasks per (votes, price)
// combination and plots the chosen phase's latency by acceptance order,
// averaged over rounds — the paper's Fig 5(a)/(b): harder tasks (more
// internal votes) are accepted more slowly and processed more slowly, and
// a higher reward shortens phase 1 but not phase 2.
func runFig5Difficulty(cfg Config, ph fig5Phase) (Result, error) {
	const nTasks = 10
	votesList := []int{4, 6, 8}
	pricesList := []int{5, 8}
	var series []textplot.Series
	var notes []string
	meanByConfig := map[string]float64{}
	for _, price := range pricesList {
		for _, votes := range votesList {
			class, err := workload.ImageFilterClass(votes)
			if err != nil {
				return Result{}, err
			}
			acc := make([]*numeric.Kahan, nTasks)
			for i := range acc {
				acc[i] = numeric.NewKahan()
			}
			for round := 0; round < cfg.Rounds; round++ {
				sim, err := market.New(market.Config{Seed: cfg.Seed + uint64(votes*100+price*10+round)})
				if err != nil {
					return Result{}, err
				}
				for i := 0; i < nTasks; i++ {
					err := sim.Post(market.TaskSpec{
						ID:        fmt.Sprintf("fig5-%dv-%dc-%d", votes, price, i),
						Class:     class,
						RepPrices: []int{price},
					})
					if err != nil {
						return Result{}, err
					}
				}
				results, err := sim.Run()
				if err != nil {
					return Result{}, err
				}
				phases := market.CollectPhases(results)
				for i := 0; i < nTasks && i < len(phases.OnHold); i++ {
					switch ph {
					case phase1:
						acc[i].Add(phases.AcceptEpochs[i] / 60) // minutes
					case phase2:
						acc[i].Add(phases.Processing[i]) // seconds, like the paper
					}
				}
			}
			x := make([]float64, nTasks)
			y := make([]float64, nTasks)
			for i := 0; i < nTasks; i++ {
				x[i] = float64(i + 1)
				y[i] = acc[i].Sum() / float64(cfg.Rounds)
			}
			name := fmt.Sprintf("$0.%02d+%dv", price, votes)
			series = append(series, textplot.Series{Name: name, X: x, Y: y})
			meanByConfig[name] = numeric.Mean(y)
		}
	}
	// Difficulty ordering notes: at fixed price, more votes ⇒ slower.
	for _, price := range pricesList {
		e := meanByConfig[fmt.Sprintf("$0.%02d+4v", price)]
		h := meanByConfig[fmt.Sprintf("$0.%02d+8v", price)]
		label := "phase-1 epoch"
		if ph == phase2 {
			label = "phase-2 latency"
		}
		notes = append(notes, fmt.Sprintf("fig5%s: at $0.%02d mean %s rises from %.2f (4v) to %.2f (8v)",
			phaseSuffix(ph), price, label, e, h))
		if h <= e {
			notes = append(notes, fmt.Sprintf("WARNING: difficulty did not slow %s at $0.%02d", label, price))
		}
	}
	id := "fig5a"
	title := "Difficulty vs Phase 1 (acceptance epoch by order)"
	ylabel := "latency/min"
	if ph == phase2 {
		id = "fig5b"
		title = "Difficulty vs Phase 2 (processing latency by order)"
		ylabel = "latency/second"
	}
	fig := textplot.Figure{ID: id, Title: title, XLabel: "order", YLabel: ylabel, Series: series}
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}

func phaseSuffix(ph fig5Phase) string {
	if ph == phase2 {
		return "b"
	}
	return "a"
}

// runFig5c reproduces the paper's tuning comparison on the marketplace:
// three task types with 10/15/20 required repetitions, budgets $6–$10;
// OPT (Algorithm 3) against the equal-payment heuristic. Each point is
// the mean completion time per task type over cfg.Rounds marketplace
// runs, in minutes — the layout of the paper's Fig 5(c).
func runFig5c(cfg Config) (Result, error) {
	budgets := workload.Fig5cBudgets()
	if cfg.Fast {
		budgets = []int{budgets[0], budgets[len(budgets)-1]}
	}
	est := htuning.NewEstimator()
	typeNames := []string{"t1", "t2", "t3"}
	mkSeries := func(prefix string) []textplot.Series {
		out := make([]textplot.Series, len(typeNames))
		for i, tn := range typeNames {
			out[i] = textplot.Series{Name: prefix + "(" + tn + ")"}
		}
		return out
	}
	optSeries := mkSeries("OPT")
	heuSeries := mkSeries("HEU")
	var notes []string

	for _, budget := range budgets {
		p, err := workload.Fig5cProblem(budget)
		if err != nil {
			return Result{}, err
		}
		optRes, err := htuning.SolveHeterogeneous(est, p)
		if err != nil {
			return Result{}, fmt.Errorf("budget %d OPT: %w", budget, err)
		}
		optAlloc, err := optRes.Allocation(p)
		if err != nil {
			return Result{}, err
		}
		heuAlloc, err := htuning.UniformTypeAllocation(p)
		if err != nil {
			return Result{}, fmt.Errorf("budget %d HEU: %w", budget, err)
		}
		optLat, err := fig5cRun(cfg, p, optAlloc, uint64(budget)*2)
		if err != nil {
			return Result{}, err
		}
		heuLat, err := fig5cRun(cfg, p, heuAlloc, uint64(budget)*2+1)
		if err != nil {
			return Result{}, err
		}
		for i := range typeNames {
			optSeries[i].X = append(optSeries[i].X, float64(budget)/100)
			optSeries[i].Y = append(optSeries[i].Y, optLat[i])
			heuSeries[i].X = append(heuSeries[i].X, float64(budget)/100)
			heuSeries[i].Y = append(heuSeries[i].Y, heuLat[i])
		}
		optMax, heuMax := maxOf(optLat), maxOf(heuLat)
		notes = append(notes, fmt.Sprintf("fig5c: budget $%.0f OPT makespan %.1f min vs HEU %.1f min (prices %v)",
			float64(budget)/100, optMax, heuMax, optRes.Prices))
		if optMax > heuMax*1.05 {
			notes = append(notes, fmt.Sprintf("WARNING: OPT lost at budget %d", budget))
		}
	}
	fig := textplot.Figure{
		ID:     "fig5c",
		Title:  "OPT vs equal-payment heuristic (3 types, 10/15/20 reps)",
		XLabel: "budget/$",
		YLabel: "latency/min",
		Series: append(optSeries, heuSeries...),
	}
	return Result{Figures: []textplot.Figure{fig}, Notes: notes}, nil
}

// fig5cRun replays an allocation on the marketplace cfg.Rounds times and
// returns the mean completion time (minutes) of each group's tasks.
func fig5cRun(cfg Config, p htuning.Problem, a htuning.Allocation, salt uint64) ([]float64, error) {
	acc := make([]*numeric.Kahan, len(p.Groups))
	for i := range acc {
		acc[i] = numeric.NewKahan()
	}
	specs, err := workload.SpecsForAllocation(p, a, 0.9)
	if err != nil {
		return nil, err
	}
	for round := 0; round < cfg.Rounds; round++ {
		sim, err := market.New(market.Config{Seed: cfg.Seed + salt*1_000_003 + uint64(round)})
		if err != nil {
			return nil, err
		}
		if err := sim.PostAll(specs); err != nil {
			return nil, err
		}
		results, err := sim.Run()
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			var gi int
			if _, err := fmt.Sscanf(res.TaskID, "g%d-", &gi); err != nil || gi < 0 || gi >= len(acc) {
				return nil, fmt.Errorf("unparseable task id %q", res.TaskID)
			}
			acc[gi].Add(res.CompletedAt / 60)
		}
	}
	out := make([]float64, len(acc))
	for i, k := range acc {
		out[i] = k.Sum() / float64(cfg.Rounds*p.Groups[i].Tasks)
	}
	return out, nil
}

func maxOf(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
