package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("%d/100 identical outputs for different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children produced identical first outputs")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Errorf("digit %d count %d deviates from expected %d", d, c, n/10)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	r := New(13)
	for _, lambda := range []float64{0.5, 1, 4} {
		sum, sumsq := 0.0, 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			v := r.Exp(lambda)
			if v < 0 {
				t.Fatalf("negative exponential sample %v", v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		if math.Abs(mean-1/lambda) > 3.5/lambda/math.Sqrt(n)*3 {
			t.Errorf("λ=%v: mean %v, want %v", lambda, mean, 1/lambda)
		}
		variance := sumsq/n - mean*mean
		if math.Abs(variance-1/(lambda*lambda)) > 0.05/(lambda*lambda) {
			t.Errorf("λ=%v: var %v, want %v", lambda, variance, 1/(lambda*lambda))
		}
	}
}

func TestErlangMoments(t *testing.T) {
	r := New(17)
	for _, k := range []int{1, 3, 10} {
		lambda := 2.0
		sum := 0.0
		const n = 100000
		for i := 0; i < n; i++ {
			sum += r.Erlang(k, lambda)
		}
		mean := sum / n
		want := float64(k) / lambda
		if math.Abs(mean-want) > 0.02*want+0.01 {
			t.Errorf("Erlang(%d,%v) mean = %v, want %v", k, lambda, mean, want)
		}
	}
}

func TestErlangLargeShapeFallback(t *testing.T) {
	// Shape large enough that the product-of-uniforms can underflow.
	r := New(19)
	const k = 800
	v := r.Erlang(k, 1)
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("Erlang(%d,1) sample invalid: %v", k, v)
	}
	if math.Abs(v-k) > 200 { // mean k, sd √k ≈ 28
		t.Errorf("Erlang(%d,1) sample %v implausibly far from mean", k, v)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(23)
	for _, mean := range []float64{0.5, 4, 12, 60} {
		sum := 0.0
		const n = 60000
		for i := 0; i < n; i++ {
			v := r.Poisson(mean)
			if v < 0 {
				t.Fatalf("negative poisson sample %d", v)
			}
			sum += float64(v)
		}
		got := sum / n
		if math.Abs(got-mean) > 4*math.Sqrt(mean/n)+0.02 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, n8 uint8) bool {
		n := int(n8%50) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(29)
	if r.Bernoulli(0) || !r.Bernoulli(1) {
		t.Error("Bernoulli boundary behaviour wrong")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", float64(hits)/n)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(31)
	sum, sumsq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(37)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Errorf("shuffle changed multiset, sum = %d", sum)
	}
}
