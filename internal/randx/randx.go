// Package randx provides a small, fully deterministic random number
// generator for the simulators and Monte-Carlo estimators in hputune.
//
// The generator is xoshiro256** seeded through splitmix64, which gives
// high-quality 64-bit streams with a tiny state, cheap forking of
// statistically independent sub-streams (Split), and bit-for-bit
// reproducible experiment runs across platforms — properties math/rand
// does not guarantee across Go releases.
package randx

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random generator. It is not safe for
// concurrent use; fork independent streams with Split instead of sharing.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that nearby
// seeds yield unrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A theoretically possible all-zero state would lock the generator.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split forks a statistically independent generator from r, advancing r.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// Mix64 is the splitmix64 finalizer: a cheap bijective mixer whose
// output bits all depend on all input bits. Callers use it to hash
// cache keys and to derive decorrelated per-round seeds.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Exp returns an exponentially distributed sample with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("randx: Exp with non-positive rate")
	}
	// -log(1-U) with U in [0,1) avoids log(0).
	return -math.Log1p(-r.Float64()) / lambda
}

// Erlang returns the sum of k independent Exp(lambda) samples.
// It panics if k <= 0 or lambda <= 0.
func (r *Rand) Erlang(k int, lambda float64) float64 {
	if k <= 0 {
		panic("randx: Erlang with non-positive shape")
	}
	// Product-of-uniforms form: one log instead of k.
	p := 1.0
	for i := 0; i < k; i++ {
		p *= 1 - r.Float64()
	}
	if p <= 0 {
		// Underflow for large k: fall back to summing logs.
		s := 0.0
		for i := 0; i < k; i++ {
			s += r.Exp(lambda)
		}
		return s
	}
	return -math.Log(p) / lambda
}

// Poisson returns a Poisson(mean) sample. Knuth's method is used for small
// means and the PTRS transformed-rejection method of Hörmann for large
// means. It panics if mean < 0.
func (r *Rand) Poisson(mean float64) int {
	switch {
	case mean < 0:
		panic("randx: Poisson with negative mean")
	case mean == 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	return r.poissonPTRS(mean)
}

// poissonPTRS implements Hörmann's PTRS sampler for mean >= 10.
func (r *Rand) poissonPTRS(mu float64) int {
	b := 0.931 + 2.53*math.Sqrt(mu)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMu := math.Log(mu)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mu + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lf := logFactorialFloat(k)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMu-mu-lf {
			return int(k)
		}
	}
}

func logFactorialFloat(k float64) float64 {
	v, _ := math.Lgamma(k + 1)
	return v
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a standard normal sample via the Marsaglia polar method.
func (r *Rand) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
