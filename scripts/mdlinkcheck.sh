#!/bin/sh
# mdlinkcheck.sh FILE.md... — verify every relative markdown link target
# exists. External links (http/https/mailto) are skipped; fragment-only
# links (#section) are skipped; a trailing #anchor on a file link is
# stripped before the existence check. Exits non-zero listing every
# broken link.
set -u

fail=0
for f in "$@"; do
    [ -f "$f" ] || { echo "mdlinkcheck: no such file: $f" >&2; fail=1; continue; }
    dir=$(dirname "$f")
    # Inline links: capture the (...) target of ](...), tolerating
    # multiple links per line.
    grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//' |
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "mdlinkcheck: $f: broken link: $target" >&2
            echo broken > "${TMPDIR:-/tmp}/mdlinkcheck.$$"
        fi
    done
done
if [ -e "${TMPDIR:-/tmp}/mdlinkcheck.$$" ]; then
    rm -f "${TMPDIR:-/tmp}/mdlinkcheck.$$"
    exit 1
fi
exit "$fail"
