#!/bin/sh
# doccheck.sh — guard that every internal/* package carries a gofmt-style
# package comment: a "// Package <name>" (or "/* Package <name>") doc
# comment in at least one of its non-test Go files. pkg.go.dev and godoc
# render nothing for a package without one.
set -u

fail=0
go list -f '{{.Dir}} {{.Name}}' ./internal/... | while read -r dir name; do
    found=0
    for g in "$dir"/*.go; do
        case "$g" in *_test.go) continue ;; esac
        if grep -qE "^(// Package $name |/\* Package $name )" "$g"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "doccheck: package $name ($dir) has no package comment" >&2
        echo broken > "${TMPDIR:-/tmp}/doccheck.$$"
    fi
done
if [ -e "${TMPDIR:-/tmp}/doccheck.$$" ]; then
    rm -f "${TMPDIR:-/tmp}/doccheck.$$"
    exit 1
fi
exit "$fail"
