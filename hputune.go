package hputune

import (
	"hputune/internal/htuning"
	"hputune/internal/pricing"
	"hputune/internal/randx"
)

// Core problem vocabulary, re-exported from the tuning engine.
type (
	// TaskType describes one class of atomic task: acceptance behaviour as
	// a function of price, and price-independent processing rate.
	TaskType = htuning.TaskType
	// Group is a set of identical tasks sharing a repetition requirement.
	Group = htuning.Group
	// Problem is an H-Tuning instance: groups plus a discrete budget.
	Problem = htuning.Problem
	// Allocation assigns a payment to every repetition of every task.
	Allocation = htuning.Allocation
	// RepetitionResult is a Scenario II solution (per-group prices).
	RepetitionResult = htuning.RepetitionResult
	// HeterogeneousResult is a Scenario III solution with bi-objective
	// diagnostics (Utopia Point, Closeness).
	HeterogeneousResult = htuning.HeterogeneousResult
	// UtopiaPoint is the pair of independently optimized objectives of
	// Scenario III.
	UtopiaPoint = htuning.UtopiaPoint
	// Estimator computes and memoizes expected latencies.
	Estimator = htuning.Estimator
	// Phase selects on-hold-only or wall-clock latency in estimates.
	Phase = htuning.Phase
)

// Phase values.
const (
	// PhaseOnHold scores only the acceptance phase (what payment controls).
	PhaseOnHold = htuning.PhaseOnHold
	// PhaseBoth scores acceptance plus processing (wall clock).
	PhaseBoth = htuning.PhaseBoth
)

// ErrBudgetTooSmall is wrapped by solvers when a budget cannot give every
// repetition at least one payment unit.
var ErrBudgetTooSmall = htuning.ErrBudgetTooSmall

// Price→rate models (Sec 3.3 of the paper). The synthetic non-linear
// models and the empirical interpolating table live in
// internal/pricing; spec documents reach them through the "model" kind
// field, so they need no root aliases.
type (
	// RateModel maps a per-repetition price to the on-hold rate λo.
	RateModel = pricing.RateModel
	// Linear is the paper's Hypothesis 1: λo(c) = K·c + B.
	Linear = pricing.Linear
)

// NewEstimator returns an empty latency estimator (memoizing cache).
func NewEstimator() *Estimator { return htuning.NewEstimator() }

// EvenAllocation solves Scenario I (Algorithm 1, EA): one group of
// identical tasks, budget split evenly per repetition with the remainder
// spread one unit at a time. Optimal under the Linearity Hypothesis
// (Theorem 1 of the paper).
func EvenAllocation(p Problem) (Allocation, error) { return htuning.EvenAllocation(p) }

// SolveRepetition solves Scenario II (Algorithm 2, RA): marginal-gain
// allocation over per-group expected latencies.
func SolveRepetition(est *Estimator, p Problem) (RepetitionResult, error) {
	return htuning.SolveRepetition(est, p)
}

// SolveRepetitionDP solves Scenario II exactly by dynamic programming over
// the budget; the certification oracle for SolveRepetition.
func SolveRepetitionDP(est *Estimator, p Problem) (RepetitionResult, error) {
	return htuning.SolveRepetitionDP(est, p)
}

// SolveHeterogeneous solves Scenario III (Algorithm 3, HA): compromise
// programming against the Utopia Point of the bi-objective problem.
func SolveHeterogeneous(est *Estimator, p Problem) (HeterogeneousResult, error) {
	return htuning.SolveHeterogeneous(est, p)
}

// ClosenessNorm selects the distance of Definition 6; the paper uses the
// first-order (L1) norm.
type ClosenessNorm = htuning.Norm

// Closeness norms for SolveHeterogeneousNorm.
const (
	// NormL1 is the paper's first-order distance.
	NormL1 = htuning.NormL1
	// NormL2 is the Euclidean distance (ablation).
	NormL2 = htuning.NormL2
	// NormLInf is the Chebyshev distance (ablation).
	NormLInf = htuning.NormLInf
)

// SolveHeterogeneousNorm is SolveHeterogeneous under a chosen Closeness
// norm, for ablating the paper's first-order-distance design choice.
func SolveHeterogeneousNorm(est *Estimator, p Problem, norm ClosenessNorm) (HeterogeneousResult, error) {
	return htuning.SolveHeterogeneousNorm(est, p, norm)
}

// Baseline allocations from the paper's evaluation.

// BiasAllocation gives a random half of the tasks a share alpha of the
// budget (Scenario I baseline; alpha in [0.5, 1)).
func BiasAllocation(p Problem, alpha float64, seed uint64) (Allocation, error) {
	return htuning.BiasAllocation(p, alpha, randx.New(seed))
}

// TaskEvenAllocation pays every task the same total ("te" baseline).
func TaskEvenAllocation(p Problem) (Allocation, error) { return htuning.TaskEvenAllocation(p) }

// RepEvenAllocation pays every repetition the same ("re" baseline).
func RepEvenAllocation(p Problem) (Allocation, error) { return htuning.RepEvenAllocation(p) }

// UniformTypeAllocation pays every group the same total (the "HEU"
// heuristic of the paper's Fig 5(c)).
func UniformTypeAllocation(p Problem) (Allocation, error) { return htuning.UniformTypeAllocation(p) }

// NewUniformAllocation materializes uniform per-group prices into a full
// repetition-level allocation for p. Treat the result's RepPrices as
// read-only: tasks within a group are identically priced by
// construction, so they share one backing price row, and writing
// through one task's row would silently reprice every task of its
// group. Build rows by hand for allocations that need per-task
// mutation (see the "Scratch-buffer ownership" section of the package
// documentation).
func NewUniformAllocation(p Problem, prices []int) (Allocation, error) {
	return htuning.NewUniformAllocation(p, prices)
}

// SimulateJobLatency estimates the expected job completion latency of an
// allocation by Monte Carlo over the HPU model (trials samples, seeded).
func SimulateJobLatency(p Problem, a Allocation, phase Phase, trials int, seed uint64) (float64, error) {
	return htuning.SimulateJobLatency(p, a, phase, trials, randx.New(seed))
}

// Diminishing-returns diagnostics (the paper's Sec 5.1 finding: when the
// rate is price-sensitive, past some price the latency is set by
// processing time and further payment is wasted).
type (
	// PricePoint is one step of a marginal-return curve.
	PricePoint = htuning.PricePoint
	// SaturationResult locates where extra payment stops helping.
	SaturationResult = htuning.SaturationResult
)

// SaturationScan walks a group's expected latency over prices 1..maxPrice
// and finds where one more unit buys less than frac of the group's
// irreducible processing latency.
func SaturationScan(est *Estimator, g Group, maxPrice int, frac float64) (SaturationResult, error) {
	return htuning.SaturationScan(est, g, maxPrice, frac)
}
